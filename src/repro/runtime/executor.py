"""Executors: where a work plan's items actually run.

Two implementations share one contract:

* :class:`SerialExecutor` — items run inline, in plan order, against one
  shared artifact store.  This is the reference semantics.
* :class:`ProcessExecutor` — items run across a pool of worker processes.
  The scheduler first computes the plan's shared pipeline prefix once
  (:func:`~repro.runtime.plan.shared_prefix_plan`) into a
  :class:`~repro.engine.store.DiskSpillStore` directory, then dispatches
  items one at a time to idle workers, tracking exactly which item is
  in flight on which process.  A worker that crashes or exceeds its
  timeout is killed and replaced, and its item is re-dispatched up to
  ``retries`` times; an item that still fails is *reported* (and, under
  ``strict``, raised) — never silently dropped.

The determinism contract both executors honour: for every item, the
returned :class:`ItemRecord`'s ``value``, ``ledger_summary``,
``transcript_digest`` / ``ledger_records``, ``accountant`` and
``rng_state`` are bit-for-bit identical regardless of executor, worker
count, scheduling order or retries.  That holds because items are
self-contained (each builds its own environment and RNG from its config)
and because the engine's artifact replay is itself bit-for-bit — a worker
hydrating a cached construction is indistinguishable from one that
computed it.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import queue as queue_module
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import obs as observability
from ..core.config import RuntimeConfig
from ..engine.store import ArtifactStore
from .items import WorkItem, execute_item
from .plan import WorkPlan, shared_prefix_plan
from .worker import DONE, ChaosConfig, open_worker_store, result_key, worker_main

#: Default byte budget of the shared spill store (scheduler and workers).
DEFAULT_STORE_BYTES = 256 * 1024 * 1024

#: How often the scheduler polls the result queue / worker liveness.
_POLL_SECONDS = 0.05

#: Default base of the exponential retry backoff (seconds).
DEFAULT_BACKOFF_BASE = 0.05

#: Ceiling on any single backoff delay (seconds).  Exponential growth past
#: this point only wedges the scheduler; real deployments cap and keep
#: retrying at the cap.
BACKOFF_CAP_SECONDS = 30.0

#: Largest doubling exponent ever applied.  ``2.0 ** 1024`` raises
#: ``OverflowError``, and with any sane ``base`` the cap is reached long
#: before this, so the clamp only exists to keep the function total for
#: adversarial ``attempt`` values.
_BACKOFF_MAX_EXPONENT = 63


def backoff_delay(seed: int, item_key: str, attempt: int, base: float) -> float:
    """Exponential backoff with deterministic seeded jitter.

    ``base * 2**(attempt-1)`` scaled by a jitter factor in ``[0.5, 1.5)``
    derived from ``(seed, item_key, attempt)`` — a pure function, so two
    schedulers replaying the same failures wait the same amount and the
    recorded ``backoff_seconds`` stat is reproducible.  Total for every
    ``attempt``: the exponent never goes negative (attempt 0 and 1 both use
    ``2**0``), is clamped before ``2.0 ** n`` can overflow a float, and the
    returned delay never exceeds :data:`BACKOFF_CAP_SECONDS`.
    """
    if base <= 0.0:
        return 0.0
    digest = hashlib.sha256(
        f"backoff/{seed}/{attempt}/{item_key}".encode("utf-8")
    ).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "little") / 2.0**64
    exponent = min(max(attempt - 1, 0), _BACKOFF_MAX_EXPONENT)
    return min(base * (2.0**exponent) * jitter, BACKOFF_CAP_SECONDS)


@dataclass(frozen=True)
class FailedAttempt:
    """Provenance of one failed dispatch of a work item.

    ``kind`` is ``"crash"`` (worker died), ``"timeout"`` (deadline kill),
    ``"missing-result"`` (acknowledged but payload unreadable) or
    ``"error"`` (deterministic in-worker exception).
    """

    attempt: int
    worker: Optional[int]
    kind: str
    reason: str


@dataclass
class ItemRecord:
    """Outcome of one executed work item (see the payload schema in
    :mod:`repro.runtime.items`).  ``attempts``/``worker``/``duration`` are
    scheduling metadata and deliberately excluded from any equivalence
    notion — everything else is covered by the determinism contract."""

    key: str
    label: str
    value: Any
    ledger_summary: Optional[dict]
    transcript_digest: Optional[str]
    ledger_records: Optional[tuple]
    accountant: Optional[dict]
    rng_state: Optional[dict]
    attempts: int = 1
    worker: Optional[int] = None
    duration: float = 0.0
    #: Worker-side observability snapshot (spans + metrics), present only
    #: when the run was traced.  Scheduling metadata like ``attempts`` —
    #: excluded from every equivalence notion.
    obs: Optional[dict] = None

    @classmethod
    def from_payload(cls, item: WorkItem, payload: dict, **metadata) -> "ItemRecord":
        return cls(
            key=item.key(),
            label=item.label or type(item).__name__,
            value=payload["value"],
            ledger_summary=payload["ledger_summary"],
            transcript_digest=payload["transcript_digest"],
            ledger_records=payload["ledger_records"],
            accountant=payload["accountant"],
            rng_state=payload["rng_state"],
            obs=payload.get("obs"),
            **metadata,
        )


@dataclass
class RuntimeReport:
    """Everything an execution produced: records per item key, failures per
    item key (reason strings), per-attempt failure provenance (for every
    item that failed at least one attempt — including items that later
    succeeded on retry), and scheduler statistics."""

    records: Dict[str, ItemRecord] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    failure_attempts: Dict[str, Tuple[FailedAttempt, ...]] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)

    def value(self, key: str) -> Any:
        return self.records[key].value


class WorkItemFailure(RuntimeError):
    """Raised by a strict executor when items failed after all retries.

    ``failures`` keeps the final reason string per key (the stable surface
    existing callers match on); ``failure_attempts`` adds the per-attempt
    provenance — which worker, which attempt, crash vs timeout vs error.
    """

    def __init__(self, failures: Dict[str, str], report: "RuntimeReport") -> None:
        self.failures = failures
        self.report = report
        self.failure_attempts = report.failure_attempts
        parts = []
        for key, reason in failures.items():
            entry = f"{key.split('/', 2)[-1][:60]}: {reason.strip().splitlines()[-1]}"
            history = report.failure_attempts.get(key, ())
            if history:
                trail = ", ".join(
                    f"attempt {record.attempt}"
                    + (f" on worker {record.worker}" if record.worker is not None else "")
                    + f": {record.kind}"
                    for record in history
                )
                entry += f" [{trail}]"
            parts.append(entry)
        summary = "; ".join(parts)
        super().__init__(f"{len(failures)} work item(s) failed: {summary}")


class Executor:
    """Interface every executor implements."""

    def execute(self, plan: WorkPlan) -> RuntimeReport:
        raise NotImplementedError


class SerialExecutor(Executor):
    """Run items inline, in plan order — the reference execution semantics.

    One shared store serves every item, so the plan's shared stages dedupe
    exactly like a serial sweep over one ``ArtifactStore`` always has.
    """

    def __init__(self, store: Optional[ArtifactStore] = None) -> None:
        self.store = store

    def execute(self, plan: WorkPlan) -> RuntimeReport:
        store = self.store if self.store is not None else ArtifactStore(max_entries=256)
        report = RuntimeReport(stats={"executor": "serial", "items": len(plan)})
        started = time.perf_counter()
        for item in plan.unique_items():
            item_started = time.perf_counter()
            with observability.span(
                "runtime.item", label=item.label or type(item).__name__
            ):
                payload = execute_item(item, store)
            observability.add_counter("runtime.dispatches")
            report.records[item.key()] = ItemRecord.from_payload(
                item, payload, duration=time.perf_counter() - item_started
            )
        report.stats["wall_seconds"] = time.perf_counter() - started
        report.stats["duplicate_requests"] = plan.duplicate_requests
        return report


class ProcessExecutor(Executor):
    """Schedule items across a pool of worker processes.

    Parameters mirror :class:`~repro.core.config.RuntimeConfig`:
    ``max_workers`` (default ``os.cpu_count()``), ``retries`` (re-dispatch
    budget for crashed/timed-out items), ``timeout`` (per-item wall-clock
    budget; item-level ``timeout`` overrides).  ``spill_dir`` pins the
    shared artifact directory (default: a temporary directory per
    ``execute`` call, removed afterwards); ``strict`` raises
    :class:`WorkItemFailure` when any item remains failed.

    Retries are re-dispatched after an exponential backoff with
    deterministic seeded jitter (:func:`backoff_delay`, disable with
    ``backoff_base=0``); the accumulated wait is reported as
    ``backoff_seconds`` in the runtime stats.  ``chaos`` installs a seeded
    :class:`~repro.runtime.worker.ChaosConfig` fault schedule in every
    worker — test-only machinery for proving the crash/timeout/retry path
    preserves the determinism contract.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        retries: int = 1,
        timeout: Optional[float] = None,
        spill_dir: Optional[str] = None,
        store_bytes: int = DEFAULT_STORE_BYTES,
        strict: bool = True,
        start_method: Optional[str] = None,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_seed: int = 0,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        self.max_workers = max_workers
        self.retries = retries
        self.timeout = timeout
        self.spill_dir = spill_dir
        self.store_bytes = store_bytes
        self.strict = strict
        self.start_method = start_method
        self.backoff_base = backoff_base
        self.backoff_seed = backoff_seed
        self.chaos = chaos

    @classmethod
    def from_config(cls, config: RuntimeConfig, **overrides) -> "ProcessExecutor":
        options = {
            "max_workers": config.max_workers,
            "retries": config.retries,
            "timeout": config.timeout_seconds,
        }
        options.update(overrides)
        return cls(**options)

    # ------------------------------------------------------------------ #
    # Orchestration
    # ------------------------------------------------------------------ #
    def execute(self, plan: WorkPlan) -> RuntimeReport:
        items = plan.unique_items()
        report = RuntimeReport(
            stats={
                "executor": "process",
                "items": len(items),
                "duplicate_requests": plan.duplicate_requests,
                "crashes": 0,
                "timeouts": 0,
                "retries_used": 0,
                "backoff_seconds": 0.0,
            }
        )
        if not items:
            return report
        started = time.perf_counter()
        cleanup = None
        directory = self.spill_dir
        if directory is None:
            cleanup = tempfile.TemporaryDirectory(prefix="repro-runtime-")
            directory = cleanup.name
        try:
            with observability.span("runtime.execute", items=len(items)):
                store = open_worker_store(directory, self.store_bytes)
                warm_started = time.perf_counter()
                with observability.span("runtime.warmup"):
                    report.stats["warmup_runs"] = self._warm_shared_prefix(items, store)
                report.stats["warmup_seconds"] = time.perf_counter() - warm_started
                self._run_pool(items, directory, store, report)
                report.stats["store"] = store.stats()
            tracer = observability.current_tracer()
            if tracer is not None:
                # Merge worker snapshots in plan-request order — the one
                # order every scheduler interleaving agrees on — so the
                # assembled RunTrace is deterministic.
                for item in items:
                    record = report.records.get(item.key())
                    if record is not None:
                        tracer.attach_remote(record.obs)
        finally:
            if cleanup is not None:
                cleanup.cleanup()
        report.stats["wall_seconds"] = time.perf_counter() - started
        if report.failures and self.strict:
            raise WorkItemFailure(report.failures, report)
        return report

    def _warm_shared_prefix(self, items: List[WorkItem], store: ArtifactStore) -> int:
        """Compute each shared stage prefix once and persist it for workers."""
        from ..core.lumos import LumosSystem

        runs = shared_prefix_plan(items)
        for run in runs:
            graph = run.item.graph_spec.load()
            system = LumosSystem(graph, run.item.config, store=store)
            system.advance(run.through)
            for key in run.persist_keys:
                store.persist(key)
        return len(runs)

    def _mp_context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        # On Linux, fork keeps warm per-process caches (loaded graphs,
        # backend state) visible to workers for free.  Everywhere else use
        # the platform default (spawn on Windows *and* macOS — forking a
        # process that touched Accelerate/ObjC is unsafe there, which is
        # why CPython switched its own default): items are self-contained
        # and importable-by-name, so any start method works.
        if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _run_pool(
        self,
        items: List[WorkItem],
        directory: str,
        store: ArtifactStore,
        report: RuntimeReport,
    ) -> None:
        context = self._mp_context()
        worker_count = min(self.max_workers or os.cpu_count() or 1, len(items))
        result_queue = context.Queue()
        workers: Dict[int, Any] = {}
        task_queues: Dict[int, Any] = {}
        # worker id -> (dispatch ticket, item, started, deadline).  Tickets
        # disambiguate a live dispatch from a stale result: a worker we
        # killed at its deadline may have flushed a result message first,
        # and that message must not be attributed to whatever the respawned
        # worker is running now.
        inflight: Dict[int, Tuple[int, WorkItem, float, float]] = {}
        attempts: Dict[str, int] = {}
        attempt_failures: Dict[str, List[FailedAttempt]] = {}
        pending = deque(items)
        # Items waiting out their retry backoff: (monotonic ready time, item).
        deferred: List[Tuple[float, WorkItem]] = []
        done_keys: set = set()
        respawns = 0
        next_ticket = 0
        max_respawns = max(4, 2 * (self.retries + 1) * len(items))
        trace_workers = observability.current_tracer() is not None

        def spawn(worker_id: int) -> None:
            task_queues[worker_id] = context.Queue()
            process = context.Process(
                target=worker_main,
                args=(worker_id, task_queues[worker_id], result_queue,
                      directory, self.store_bytes, self.chaos, trace_workers),
                daemon=True,
            )
            process.start()
            workers[worker_id] = process
            observability.add_counter("runtime.spawns")
            observability.set_gauge("runtime.workers", float(len(workers)))

        def dispatch(worker_id: int) -> None:
            nonlocal next_ticket
            item = pending.popleft()
            key = item.key()
            attempts[key] = attempts.get(key, 0) + 1
            timeout = item.timeout if item.timeout is not None else self.timeout
            deadline = time.monotonic() + timeout if timeout is not None else float("inf")
            next_ticket += 1
            task_queues[worker_id].put((next_ticket, item, attempts[key]))
            inflight[worker_id] = (next_ticket, item, time.perf_counter(), deadline)
            observability.add_counter("runtime.dispatches")
            observability.observe("runtime.queue_depth", float(len(pending)))

        def give_up_or_retry(
            item: WorkItem, kind: str, reason: str, worker_id: Optional[int]
        ) -> None:
            key = item.key()
            attempt = attempts.get(key, 0)
            attempt_failures.setdefault(key, []).append(
                FailedAttempt(attempt=attempt, worker=worker_id, kind=kind, reason=reason)
            )
            observability.add_counter(f"runtime.attempt_failures.{kind}")
            if attempt <= self.retries:
                report.stats["retries_used"] += 1
                observability.add_counter("runtime.retries")
                delay = backoff_delay(self.backoff_seed, key, attempt, self.backoff_base)
                if delay > 0.0:
                    report.stats["backoff_seconds"] += delay
                    observability.add_counter("runtime.backoff_seconds", delay)
                    deferred.append((time.monotonic() + delay, item))
                else:
                    pending.appendleft(item)
            else:
                report.failures[key] = reason
                report.failure_attempts[key] = tuple(attempt_failures[key])

        def reap(worker_id: int, kill: bool) -> None:
            process = workers.pop(worker_id)
            if kill and process.is_alive():
                process.kill()
            process.join(timeout=5.0)
            task_queues.pop(worker_id, None)

        for worker_id in range(worker_count):
            spawn(worker_id)

        try:
            while len(done_keys) + len(report.failures) < len(items):
                # Promote items whose retry backoff has elapsed.
                if deferred:
                    now_monotonic = time.monotonic()
                    still_waiting = []
                    for ready_at, deferred_item in deferred:
                        if ready_at <= now_monotonic:
                            pending.append(deferred_item)
                        else:
                            still_waiting.append((ready_at, deferred_item))
                    deferred[:] = still_waiting

                # Keep every idle worker busy.  The liveness pre-check
                # avoids feeding a corpse (which would burn one of the
                # item's retry attempts on a death that predates it); a
                # worker dying in the instant after the check is handled by
                # the liveness pass like any mid-item crash.
                for worker_id in list(workers):
                    if pending and worker_id not in inflight and workers[worker_id].is_alive():
                        dispatch(worker_id)

                # Collect finished work.
                try:
                    tag, worker_id, ticket, key, detail = result_queue.get(
                        timeout=_POLL_SECONDS
                    )
                except queue_module.Empty:
                    pass
                except (EOFError, OSError, pickle.UnpicklingError):
                    # A worker killed mid-send can in principle leave a
                    # partial message in the shared queue (our control
                    # messages are far below PIPE_BUF, so single-write
                    # atomicity makes this effectively theoretical).  Treat
                    # it as "no message": the liveness/deadline pass below
                    # owns recovery for whatever worker caused it.
                    report.stats["queue_errors"] = report.stats.get("queue_errors", 0) + 1
                else:
                    entry = inflight.get(worker_id)
                    if entry is None or entry[0] != ticket:
                        # Stale flush from a worker we already gave up on
                        # (timeout kill racing its send); the item was
                        # re-dispatched or reported, so drop the message —
                        # re-execution is deterministic either way.
                        continue
                    _, item, item_started, _ = inflight.pop(worker_id)
                    if tag == DONE:
                        artifact = store.get(result_key(key))
                        if artifact is None:
                            # The worker acknowledged but the payload never
                            # became readable — treat like a crash.
                            report.stats["crashes"] += 1
                            observability.add_counter("runtime.crashes")
                            give_up_or_retry(
                                item,
                                "missing-result",
                                "result payload missing from store",
                                worker_id,
                            )
                        else:
                            done_keys.add(key)
                            if key in attempt_failures:
                                # Keep the provenance of the failed attempts
                                # that preceded this success.
                                report.failure_attempts[key] = tuple(
                                    attempt_failures[key]
                                )
                            report.records[key] = ItemRecord.from_payload(
                                item,
                                artifact.value,
                                attempts=attempts[key],
                                worker=worker_id,
                                duration=time.perf_counter() - item_started,
                            )
                    else:  # FAIL: deterministic in-worker exception
                        report.failures[key] = detail
                        attempt_failures.setdefault(key, []).append(
                            FailedAttempt(
                                attempt=attempts.get(key, 0),
                                worker=worker_id,
                                kind="error",
                                reason=detail,
                            )
                        )
                        report.failure_attempts[key] = tuple(attempt_failures[key])
                    continue

                # Liveness and deadlines.
                now = time.monotonic()
                for worker_id in list(workers):
                    process = workers[worker_id]
                    entry = inflight.get(worker_id)
                    if not process.is_alive():
                        reap(worker_id, kill=False)
                        if entry is not None:
                            item = entry[1]
                            del inflight[worker_id]
                            report.stats["crashes"] += 1
                            observability.add_counter("runtime.crashes")
                            give_up_or_retry(
                                item,
                                "crash",
                                f"worker process died (exit code {process.exitcode}) "
                                f"while running {item.label or item.key()}",
                                worker_id,
                            )
                    elif entry is not None and now > entry[3]:
                        item = entry[1]
                        del inflight[worker_id]
                        reap(worker_id, kill=True)
                        report.stats["timeouts"] += 1
                        observability.add_counter("runtime.timeouts")
                        give_up_or_retry(
                            item,
                            "timeout",
                            f"work item exceeded its {item.timeout or self.timeout}s "
                            f"timeout: {item.label or item.key()}",
                            worker_id,
                        )
                    if worker_id not in workers and (pending or inflight or deferred):
                        if respawns >= max_respawns:
                            raise RuntimeError(
                                "worker pool unstable: "
                                f"{respawns} respawns for {len(items)} items"
                            )
                        respawns += 1
                        spawn(worker_id)
        finally:
            for worker_id, process in list(workers.items()):
                task_queue = task_queues.get(worker_id)
                if task_queue is not None and process.is_alive():
                    task_queue.put(None)
            for process in workers.values():
                process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
            result_queue.close()
            report.stats["respawns"] = respawns
            report.stats["max_attempts"] = max(attempts.values(), default=0)


def resolve_executor(
    executor: Union[str, Executor, RuntimeConfig, None],
    max_workers: Optional[int] = None,
    **options,
) -> Optional[Executor]:
    """Resolve the ``executor=`` knob of the evaluation entry points.

    ``None`` / ``"serial"`` mean the caller's inline loop (returns ``None``);
    ``"process"`` builds a :class:`ProcessExecutor`; an :class:`Executor`
    instance passes through so callers can inspect it (or share a spill
    directory) across calls; a :class:`~repro.core.config.RuntimeConfig`
    (e.g. ``config.with_executor("process", 4).runtime``) is expanded into
    the executor it describes.
    """
    if executor is None or executor == "serial":
        return None
    if isinstance(executor, Executor):
        return executor
    if isinstance(executor, RuntimeConfig):
        if executor.executor == "serial":
            return None
        return ProcessExecutor.from_config(executor, **options)
    if executor == "process":
        return ProcessExecutor(max_workers=max_workers, **options)
    raise ValueError(
        f"unknown executor {executor!r}; use 'serial', 'process', a RuntimeConfig "
        "or an Executor"
    )
