"""Work plans: dedupe by content key, shared-prefix scheduling.

A :class:`WorkPlan` is the unit an :class:`~repro.runtime.executor.Executor`
executes.  It is an *ordered multiset* of :class:`~repro.runtime.items.WorkItem`
requests with two invariants:

* **dedupe** — requests whose content keys collide map to one item: the
  work runs once, every requester reads the same
  :class:`~repro.runtime.executor.ItemRecord` back.  (This is the work-item
  analogue of the engine store's content keys.)
* **deterministic merge order** — ``requests`` preserves the order items
  were added in, so a caller can reassemble its result structure (a sweep
  dict, a figure table) identically to the serial loop it replaced.

:func:`shared_prefix_plan` is the scheduling brain: it inspects the engine
stage fingerprints of the pipeline-backed items and picks the minimal set
of *warm-up runs* — one representative per deepest shared stage invocation —
that the executor computes once (into the shared
:class:`~repro.engine.store.DiskSpillStore`) before fanning items out to
workers.  Workers then hydrate those artifacts from disk instead of
recomputing them, which is what turns an epsilon sweep into "construct
once, train everywhere".
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .items import WorkItem


class WorkPlan:
    """Ordered, deduplicating collection of work items."""

    def __init__(self, items: Optional[List[WorkItem]] = None) -> None:
        self._items: "OrderedDict[str, WorkItem]" = OrderedDict()
        self.requests: List[str] = []
        for item in items or []:
            self.add(item)

    def add(self, item: WorkItem) -> str:
        """Register ``item`` and return its content key.

        A key collision with an earlier item dedupes: the earlier item is
        kept (they describe the same computation by construction) and the
        new request simply points at it.
        """
        key = item.key()
        if key not in self._items:
            self._items[key] = item
        self.requests.append(key)
        return key

    def unique_items(self) -> List[WorkItem]:
        """The deduplicated items, in first-request order."""
        return list(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    @property
    def duplicate_requests(self) -> int:
        """How many requests were deduped away."""
        return len(self.requests) - len(self._items)

    def values(self, records: Dict[str, "object"]) -> List[object]:
        """Per-request values, in request order (merge helper)."""
        return [records[key].value for key in self.requests]


@dataclass(frozen=True)
class WarmupRun:
    """One parent-side prefix computation: run ``item``'s pipeline through
    stage ``through`` and persist the listed stage keys for workers."""

    item: WorkItem
    through: str
    persist_keys: Tuple[str, ...]


def shared_prefix_plan(items: List[WorkItem]) -> List[WarmupRun]:
    """Choose the warm-up runs that cover every shared stage invocation.

    A stage invocation ``(stage name, cache key)`` that appears in the
    chains of two or more items would be computed redundantly by independent
    workers; instead the executor computes it once up front.  Because stage
    keys chain (a stage's key embeds its predecessors'), covering the
    *deepest* shared invocation of a chain covers every shallower one, so a
    greedy deepest-first sweep yields a minimal set of representative runs.

    Items without a stage chain (baselines, callables) take no part.
    """
    chains = [(item, item.stage_chain()) for item in items]
    counts: Counter = Counter()
    for _, chain in chains:
        for pair in chain:
            counts[pair] += 1

    candidates = []  # (depth, item, chain)
    for item, chain in chains:
        depth = -1
        for index, pair in enumerate(chain):
            if counts[pair] >= 2:
                depth = index
        if depth >= 0:
            candidates.append((depth, item, chain))

    # Deepest chains first; ties broken by plan order (stable sort).
    candidates.sort(key=lambda entry: -entry[0])
    covered: set = set()
    runs: List[WarmupRun] = []
    for depth, item, chain in candidates:
        if chain[depth] in covered:
            continue
        runs.append(
            WarmupRun(
                item=item,
                through=chain[depth][0],
                # Persist the whole prefix the run computes: the shared
                # invocations for the fan-out, plus the representative's own
                # per-item stages (free to persist, they are already in the
                # store and one worker will want them).
                persist_keys=tuple(key for _, key in chain[: depth + 1]),
            )
        )
        covered.update(chain[: depth + 1])
    return runs
