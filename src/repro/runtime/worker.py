"""Worker-process side of the parallel runtime.

Each worker is one OS process running :func:`worker_main`: it opens its own
:class:`~repro.engine.store.DiskSpillStore` view onto the scheduler's shared
spill directory, then serves work items from its private task queue until it
receives the ``None`` sentinel.

Result hand-off is two-channel by design:

* the (potentially large) result payload is **persisted through the store**
  under a key derived from the item's content key — the same atomic-publish
  path cached pipeline artifacts use, so the control channel stays tiny;
* a small control message (``done`` / ``fail``) travels over the result
  queue so the scheduler can track liveness, retries and idle workers.

A worker that dies mid-item (crash, kill, timeout) simply never sends the
control message; the scheduler notices the dead process, re-dispatches the
item elsewhere, and the engine's content-keyed caching makes the retry
resume from whatever artifacts the first attempt already persisted.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..engine.store import ArtifactStore, DiskSpillStore, StoredArtifact
from .items import WorkItem, execute_item

#: Control-message tags on the result queue.
DONE = "done"
FAIL = "fail"


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic worker-fault injection for chaos-testing the runtime.

    Each ``(item key, attempt)`` pair maps through a seeded hash to one
    uniform draw that selects an action: ``crash`` hard-kills the worker
    mid-item (``os._exit``, so no exception handler runs — exactly the
    failure mode the scheduler's liveness pass owns), ``stall`` sleeps for
    ``stall_seconds`` before executing (with an item timeout below the stall
    this exercises the deadline-kill path).  Injection applies only to
    attempts ``<= max_attempt`` so retries are guaranteed to converge
    whenever the executor's ``retries`` budget covers it.
    """

    seed: int = 0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 5.0
    max_attempt: int = 1

    def __post_init__(self) -> None:
        for name in ("crash_rate", "stall_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
        if self.crash_rate + self.stall_rate > 1.0:
            raise ValueError("crash_rate + stall_rate must not exceed 1")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be non-negative")
        if self.max_attempt < 0:
            raise ValueError("max_attempt must be non-negative")


def chaos_action(
    chaos: Optional[ChaosConfig], item_key: str, attempt: int
) -> Optional[str]:
    """The injected action for this ``(item, attempt)``, or ``None``.

    Pure function of ``(chaos.seed, item_key, attempt)`` — the schedule is
    identical no matter which worker picks the item up or when.
    """
    if chaos is None or attempt > chaos.max_attempt:
        return None
    digest = hashlib.sha256(
        f"chaos/{chaos.seed}/{attempt}/{item_key}".encode("utf-8")
    ).digest()
    uniform = int.from_bytes(digest[:8], "little") / 2.0**64
    if uniform < chaos.crash_rate:
        return "crash"
    if uniform < chaos.crash_rate + chaos.stall_rate:
        return "stall"
    return None


def result_key(item_key: str) -> str:
    """Store key under which an item's result payload is published."""
    return f"workitem-result/{item_key}"


def open_worker_store(
    spill_directory: Optional[str], max_bytes: int, max_entries: int = 256
) -> ArtifactStore:
    """The store a worker (or the scheduler) uses for artifact hand-off."""
    if spill_directory is None:
        return ArtifactStore(max_entries=max_entries)
    return DiskSpillStore(spill_directory, max_bytes=max_bytes, max_entries=max_entries)


def publish_result(store: ArtifactStore, item_key: str, payload: dict) -> None:
    """Durably publish an item's payload for the scheduler to hydrate."""
    key = result_key(item_key)
    store.put(key, StoredArtifact(value=payload))
    if isinstance(store, DiskSpillStore):
        store.persist(key)


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    spill_directory: Optional[str],
    store_bytes: int,
    chaos: Optional[ChaosConfig] = None,
    trace: bool = False,
) -> None:
    """Serve work items until the ``None`` sentinel arrives.

    With ``trace`` set, each item runs under a fresh per-item
    :class:`~repro.obs.tracer.Tracer` whose snapshot rides back inside the
    result payload under the ``"obs"`` key — the scheduler strips it into
    :attr:`~repro.runtime.executor.ItemRecord.obs` and merges snapshots in
    plan-request order.  Untraced payloads carry no ``"obs"`` key at all,
    so traced-off runs stay byte-identical to a never-instrumented build.
    """
    # A forked worker inherits the parent's module globals — including any
    # active tracer.  Observability is strictly opt-in per item below, so
    # clear the ambient slot first; parent-side spans must never leak into
    # (or double-count within) worker snapshots.
    obs.set_tracer(None)
    store = open_worker_store(spill_directory, store_bytes)
    while True:
        task = task_queue.get()
        if task is None:
            return
        ticket, item, attempt = task  # type: int, WorkItem, int
        key = item.key()
        try:
            action = chaos_action(chaos, key, attempt)
            if action == "crash":
                # Simulate a hard worker death: bypass every exception
                # handler and atexit hook, exactly like a SIGKILL would.
                os._exit(86)
            elif action == "stall":
                time.sleep(chaos.stall_seconds)
            if trace:
                with obs.tracing(process=f"worker-{worker_id}") as tracer:
                    with obs.span(
                        "runtime.item",
                        label=item.label or type(item).__name__,
                        attempt=attempt,
                    ):
                        payload = execute_item(item, store)
                payload = dict(payload)
                payload["obs"] = tracer.snapshot()
            else:
                payload = execute_item(item, store)
            publish_result(store, key, payload)
            result_queue.put((DONE, worker_id, ticket, key, None))
        except BaseException:
            # In-process exceptions are deterministic item failures (they
            # would fail identically on retry); ship the traceback so the
            # scheduler can report them.  Hard crashes (os._exit, signals)
            # never reach this handler — the scheduler detects those by
            # process liveness instead.
            result_queue.put((FAIL, worker_id, ticket, key, traceback.format_exc()))
