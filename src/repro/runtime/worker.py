"""Worker-process side of the parallel runtime.

Each worker is one OS process running :func:`worker_main`: it opens its own
:class:`~repro.engine.store.DiskSpillStore` view onto the scheduler's shared
spill directory, then serves work items from its private task queue until it
receives the ``None`` sentinel.

Result hand-off is two-channel by design:

* the (potentially large) result payload is **persisted through the store**
  under a key derived from the item's content key — the same atomic-publish
  path cached pipeline artifacts use, so the control channel stays tiny;
* a small control message (``done`` / ``fail``) travels over the result
  queue so the scheduler can track liveness, retries and idle workers.

A worker that dies mid-item (crash, kill, timeout) simply never sends the
control message; the scheduler notices the dead process, re-dispatches the
item elsewhere, and the engine's content-keyed caching makes the retry
resume from whatever artifacts the first attempt already persisted.
"""

from __future__ import annotations

import traceback
from typing import Optional

from ..engine.store import ArtifactStore, DiskSpillStore, StoredArtifact
from .items import WorkItem, execute_item

#: Control-message tags on the result queue.
DONE = "done"
FAIL = "fail"


def result_key(item_key: str) -> str:
    """Store key under which an item's result payload is published."""
    return f"workitem-result/{item_key}"


def open_worker_store(
    spill_directory: Optional[str], max_bytes: int, max_entries: int = 256
) -> ArtifactStore:
    """The store a worker (or the scheduler) uses for artifact hand-off."""
    if spill_directory is None:
        return ArtifactStore(max_entries=max_entries)
    return DiskSpillStore(spill_directory, max_bytes=max_bytes, max_entries=max_entries)


def publish_result(store: ArtifactStore, item_key: str, payload: dict) -> None:
    """Durably publish an item's payload for the scheduler to hydrate."""
    key = result_key(item_key)
    store.put(key, StoredArtifact(value=payload))
    if isinstance(store, DiskSpillStore):
        store.persist(key)


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    spill_directory: Optional[str],
    store_bytes: int,
) -> None:
    """Serve work items until the ``None`` sentinel arrives."""
    store = open_worker_store(spill_directory, store_bytes)
    while True:
        task = task_queue.get()
        if task is None:
            return
        ticket, item = task  # type: int, WorkItem
        key = item.key()
        try:
            payload = execute_item(item, store)
            publish_result(store, key, payload)
            result_queue.put((DONE, worker_id, ticket, key, None))
        except BaseException:
            # In-process exceptions are deterministic item failures (they
            # would fail identically on retry); ship the traceback so the
            # scheduler can report them.  Hard crashes (os._exit, signals)
            # never reach this handler — the scheduler detects those by
            # process liveness instead.
            result_queue.put((FAIL, worker_id, ticket, key, traceback.format_exc()))
