"""Length-framed, CRC-checked transport between two party processes.

The secure-mode kernels in :mod:`repro.crypto` were built (PR 5) as
single-process simulations: both protocol parties live in one interpreter
and "communication" is a Python function call whose cost the
:class:`~repro.crypto.oblivious_transfer.TranscriptAccountant` *models*.
This module supplies the missing physical layer so the two parties can run
as separate OS processes (:mod:`repro.crypto.transport`): a
:class:`PartyChannel` wraps one end of a duplex
:func:`multiprocessing.Pipe` and moves opaque byte payloads as *frames* —

``[length: u32][crc32: u32][kind: u8][payload: length bytes]``

— with a CRC-32 integrity check on every receive, a typed
:class:`FrameKind` tag so protocol steps are self-describing on the wire,
and per-kind byte accounting on both directions.  The 9-byte header is the
channel's own overhead and is reported separately from protocol payload
bytes: the measured-vs-analytic contract (``docs/architecture.md`` §12)
compares *payload* bytes against :func:`~repro.crypto.secure_compare.comparison_cost`,
while ``wire_bytes_*`` tells the true on-the-wire total.

Failure surfaces are typed, never silent:

* :class:`ChannelClosed` — the peer's end is gone (EOF / broken pipe),
  e.g. a chaos-killed party; mapped by callers onto the runtime's
  :class:`~repro.runtime.executor.FailedAttempt` machinery.
* :class:`ChannelTimeout` — no frame within the deadline; every receive is
  bounded, so a dead peer can never hang the driver.
* :class:`FrameCorruption` — CRC mismatch, unknown kind tag, or an
  unexpected frame kind mid-protocol.

The channel is transport only: it never touches RNG streams, accountants,
or ledgers, so layering it under the crypto kernels cannot perturb any
pinned bit-for-bit contract.
"""

from __future__ import annotations

import multiprocessing
import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Optional, Tuple

from .. import obs

#: Frame header: payload length (u32), CRC-32 of payload (u32), kind (u8).
HEADER = struct.Struct("<IIB")

#: Bytes of channel overhead per frame (the header above).
FRAME_OVERHEAD_BYTES = HEADER.size

#: Hard cap on a single frame's payload; a corrupted length field must not
#: make the receiver attempt a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Default bound on every receive.  Generous for same-host pipes; the point
#: is that *no* receive is unbounded.
DEFAULT_TIMEOUT_SECONDS = 30.0


class FrameKind(IntEnum):
    """Self-describing tag carried by every frame.

    The OT/comparison kinds mirror the message pattern the analytic
    :func:`~repro.crypto.secure_compare.comparison_cost` model charges, so
    per-kind byte totals line up one-to-one with accountant categories.
    """

    CONTROL = 0       #: session setup / teardown handshakes
    OT_REQUEST = 1    #: receiver -> sender: choice bits / table indices
    OT_RESPONSE = 2   #: sender -> receiver: masked messages + pads
    CMP_CHOICES = 3   #: comparison batch: receiver block choices
    CMP_RESPONSE = 4  #: comparison batch: sender table responses
    CMP_AND = 5       #: comparison batch: AND-combine gate traffic
    OBS = 6           #: remote party's tracer snapshot (never protocol data)
    ERROR = 7         #: remote party's typed failure report


class ChannelError(RuntimeError):
    """Base class for transport failures."""


class ChannelClosed(ChannelError):
    """The peer's end of the pipe is gone (EOF or broken pipe)."""


class ChannelTimeout(ChannelError):
    """No frame arrived within the receive deadline."""


class FrameCorruption(ChannelError):
    """A frame failed its CRC check or violated the expected protocol."""


@dataclass
class ChannelStats:
    """Byte and frame accounting for one channel endpoint.

    ``payload_bytes_*`` is protocol data only; ``wire_bytes_*`` adds the
    fixed per-frame header.  ``by_kind_*`` maps :class:`FrameKind` names to
    payload bytes so transcripts can be reconciled per protocol step.
    """

    frames_sent: int = 0
    frames_received: int = 0
    payload_bytes_sent: int = 0
    payload_bytes_received: int = 0
    by_kind_sent: Dict[str, int] = field(default_factory=dict)
    by_kind_received: Dict[str, int] = field(default_factory=dict)

    @property
    def wire_bytes_sent(self) -> int:
        return self.payload_bytes_sent + FRAME_OVERHEAD_BYTES * self.frames_sent

    @property
    def wire_bytes_received(self) -> int:
        return self.payload_bytes_received + FRAME_OVERHEAD_BYTES * self.frames_received

    def snapshot(self) -> dict:
        """Plain-dict view for reports and bench payloads."""
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "payload_bytes_sent": self.payload_bytes_sent,
            "payload_bytes_received": self.payload_bytes_received,
            "wire_bytes_sent": self.wire_bytes_sent,
            "wire_bytes_received": self.wire_bytes_received,
            "by_kind_sent": dict(sorted(self.by_kind_sent.items())),
            "by_kind_received": dict(sorted(self.by_kind_received.items())),
        }


class PartyChannel:
    """One endpoint of a framed duplex byte channel between two parties.

    Wraps a :class:`multiprocessing.connection.Connection`; both pipe ends
    are fork- and spawn-picklable, so a channel endpoint can be handed to a
    child process through :class:`multiprocessing.Process` args.
    """

    def __init__(
        self,
        connection,
        party: str,
        timeout: float = DEFAULT_TIMEOUT_SECONDS,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self._connection = connection
        self.party = party
        self.timeout = timeout
        self.stats = ChannelStats()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(self, kind: FrameKind, payload: bytes = b"") -> int:
        """Frame ``payload`` under ``kind`` and write it to the pipe.

        Returns the payload byte count (what the measured-vs-analytic
        contract sums); header overhead is tracked in :attr:`stats` but not
        returned, to keep call sites aligned with the analytic model.
        """
        if self._closed:
            raise ChannelClosed(f"{self.party}: channel already closed")
        kind = FrameKind(kind)
        payload = bytes(payload)
        if len(payload) > MAX_FRAME_BYTES:
            raise ValueError(
                f"frame payload of {len(payload)} bytes exceeds cap {MAX_FRAME_BYTES}"
            )
        header = HEADER.pack(len(payload), zlib.crc32(payload), int(kind))
        try:
            self._connection.send_bytes(header + payload)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ChannelClosed(f"{self.party}: peer hung up during send") from exc
        self.stats.frames_sent += 1
        self.stats.payload_bytes_sent += len(payload)
        self.stats.by_kind_sent[kind.name] = (
            self.stats.by_kind_sent.get(kind.name, 0) + len(payload)
        )
        obs.add_counter("channel.frames_sent")
        obs.add_counter("channel.bytes_sent", len(payload) + FRAME_OVERHEAD_BYTES)
        return len(payload)

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #
    def recv(
        self,
        expected: Optional[Tuple[FrameKind, ...]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[FrameKind, bytes]:
        """Receive one frame, verify its CRC, and return ``(kind, payload)``.

        Every receive is bounded by ``timeout`` (falling back to the
        channel default), so a crashed peer surfaces as
        :class:`ChannelTimeout` / :class:`ChannelClosed` rather than a hang.
        With ``expected`` set, a frame of any other kind raises
        :class:`FrameCorruption` — except :attr:`FrameKind.ERROR`, whose
        payload is re-raised here as a :class:`ChannelError` carrying the
        peer's own failure text.
        """
        if self._closed:
            raise ChannelClosed(f"{self.party}: channel already closed")
        deadline = self.timeout if timeout is None else timeout
        try:
            if not self._connection.poll(deadline):
                raise ChannelTimeout(
                    f"{self.party}: no frame within {deadline:.3f}s"
                )
            raw = self._connection.recv_bytes()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ChannelClosed(f"{self.party}: peer hung up during recv") from exc
        if len(raw) < FRAME_OVERHEAD_BYTES:
            raise FrameCorruption(
                f"{self.party}: truncated frame of {len(raw)} bytes"
            )
        length, crc, kind_tag = HEADER.unpack_from(raw)
        payload = raw[FRAME_OVERHEAD_BYTES:]
        if length != len(payload):
            raise FrameCorruption(
                f"{self.party}: length field {length} != payload {len(payload)}"
            )
        if zlib.crc32(payload) != crc:
            raise FrameCorruption(f"{self.party}: CRC mismatch on {length}-byte frame")
        try:
            kind = FrameKind(kind_tag)
        except ValueError as exc:
            raise FrameCorruption(f"{self.party}: unknown frame kind {kind_tag}") from exc
        self.stats.frames_received += 1
        self.stats.payload_bytes_received += len(payload)
        self.stats.by_kind_received[kind.name] = (
            self.stats.by_kind_received.get(kind.name, 0) + len(payload)
        )
        obs.add_counter("channel.frames_received")
        obs.add_counter("channel.bytes_received", len(payload) + FRAME_OVERHEAD_BYTES)
        if expected is not None and kind not in expected:
            if kind is FrameKind.ERROR:
                raise ChannelError(
                    f"{self.party}: peer reported failure: "
                    f"{payload.decode('utf-8', errors='replace')}"
                )
            names = "/".join(k.name for k in expected)
            raise FrameCorruption(
                f"{self.party}: expected {names}, received {kind.name}"
            )
        return kind, payload

    def close(self) -> None:
        """Close this endpoint; further sends and receives raise."""
        if not self._closed:
            self._closed = True
            self._connection.close()

    def __enter__(self) -> "PartyChannel":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def channel_pair(
    timeout: float = DEFAULT_TIMEOUT_SECONDS,
    parties: Tuple[str, str] = ("driver", "party"),
) -> Tuple[PartyChannel, PartyChannel]:
    """Create a connected duplex channel pair, one endpoint per party."""
    left, right = multiprocessing.Pipe(duplex=True)
    return (
        PartyChannel(left, party=parties[0], timeout=timeout),
        PartyChannel(right, party=parties[1], timeout=timeout),
    )
