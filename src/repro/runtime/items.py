"""Picklable work items: the unit the parallel runtime schedules.

A work item is a *self-contained, content-keyed* description of one engine
invocation — an epsilon-sweep point, an ablation arm, a baseline training
run, one cell of a figure grid.  Self-contained means a worker process can
execute it from the pickled description alone (graphs travel as
:class:`GraphSpec`, never as live object references); content-keyed means
two items that would compute the same result have the same
:meth:`WorkItem.key`, so a :class:`~repro.runtime.plan.WorkPlan` dedupes
them to one execution.

Every execution returns the same payload schema (see :func:`execute_item`):
the item's *value* (the number or array the evaluation harness consumes)
plus the serialized side state that makes parallel execution auditable —
the canonical communication-ledger transcript (as a digest, optionally in
full), the ledger summary, the secure-comparison accountant counters and
the final RNG state.  The runtime's determinism contract is that all of
these are bit-for-bit identical no matter which executor (or worker) ran
the item.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.config import LumosConfig
from ..engine.fingerprint import fingerprint_graph, fingerprint_value, stage_key
from ..engine.store import ArtifactStore
from ..graph import load_dataset, split_edges, split_nodes
from ..graph.graph import Graph

#: Tasks a :class:`LumosItem` knows how to run.
LUMOS_TASKS = ("supervised", "unsupervised", "workload", "system_cost", "robustness")

#: Baseline methods a :class:`BaselineItem` knows how to train, per task.
BASELINE_METHODS = {
    "supervised": ("centralized", "lpgnn", "naive_fedgnn"),
    "unsupervised": ("centralized", "naive_fedgnn"),
}


# --------------------------------------------------------------------------- #
# Graph hand-off
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GraphSpec:
    """How a worker obtains the experiment's graph.

    Preferred form: a dataset recipe (``name``/``seed``/``num_nodes``) —
    cheap to pickle and reproduced deterministically by
    :func:`repro.graph.load_dataset` in any process.  An in-memory graph can
    be shipped inline instead (``graph=``); its fingerprint then keys the
    item, so a recipe item and an inline item never alias even when they
    would load equal bytes.
    """

    dataset: Optional[str] = None
    seed: int = 0
    num_nodes: Optional[int] = None
    graph: Optional[Graph] = None

    def __post_init__(self) -> None:
        if (self.dataset is None) == (self.graph is None):
            raise ValueError("provide exactly one of dataset= or graph=")

    def load(self) -> Graph:
        """Materialise the graph (memoised per process and per spec)."""
        if self.graph is not None:
            return self.graph
        token = (self.dataset, self.seed, self.num_nodes)
        cached = _GRAPH_CACHE.get(token)
        if cached is None:
            cached = load_dataset(self.dataset, seed=self.seed, num_nodes=self.num_nodes)
            _GRAPH_CACHE[token] = cached
        return cached

    def fingerprint(self) -> str:
        if self.graph is not None:
            return f"graph:{fingerprint_graph(self.graph)}"
        return f"dataset:{self.dataset}:{self.seed}:{self.num_nodes}"


#: Per-process memo of loaded dataset graphs: a worker executing several
#: items of one sweep loads (and fingerprints, and normalizes) the graph
#: once.  Keyed by recipe, so distinct specs never alias.
_GRAPH_CACHE: Dict[tuple, Graph] = {}


# --------------------------------------------------------------------------- #
# Item taxonomy
# --------------------------------------------------------------------------- #
class WorkItem:
    """One schedulable unit of work.

    Subclasses implement :meth:`key` (content fingerprint — equal keys mean
    "same computation", the dedupe and result-merge identity), and
    :meth:`execute` (run in whatever process the executor chose).
    :meth:`stage_chain` additionally exposes the engine stage fingerprints
    of pipeline-backed items so the scheduler can compute shared prefixes
    once (items without a pipeline return ``()``).
    """

    #: Optional human label (worker logs, failure reports).
    label: str = ""
    #: Optional per-item wall-clock budget (seconds); overrides the
    #: executor's default when set.
    timeout: Optional[float] = None

    def key(self) -> str:
        raise NotImplementedError

    def stage_chain(self) -> Tuple[Tuple[str, str], ...]:
        return ()

    def execute(self, store: ArtifactStore) -> Dict[str, Any]:
        raise NotImplementedError


def _transcript_digest(records: List[tuple]) -> str:
    """Stable digest of a canonical ledger transcript.

    ``message_records()`` is already the canonical sorted form; hashing its
    reprs gives a cross-process comparable fingerprint without shipping the
    (potentially large) record list itself.
    """
    digest = hashlib.sha256()
    for record in records:
        digest.update(repr(record).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _empty_payload(value: Any) -> Dict[str, Any]:
    return {
        "value": value,
        "ledger_summary": None,
        "transcript_digest": None,
        "ledger_records": None,
        "accountant": None,
        "rng_state": None,
    }


@dataclass(frozen=True)
class LumosItem(WorkItem):
    """One full Lumos engine run: pipeline stages + the task on top.

    ``task`` selects what is computed after the pipeline: ``supervised`` /
    ``unsupervised`` train and return the test metric (mirroring
    ``LumosSystem.run_supervised`` / ``run_unsupervised``), ``workload``
    returns the per-device workload array after construction, and
    ``system_cost`` the Fig. 8 communication/epoch-time entry.  The split is
    derived from ``split_seed`` exactly like :mod:`repro.eval.runner` does,
    so a work item is the runner's loop body, made picklable.
    """

    graph_spec: GraphSpec = field(default_factory=lambda: GraphSpec(dataset="facebook"))
    config: LumosConfig = field(default_factory=LumosConfig)
    task: str = "supervised"
    split_seed: int = 0
    label: str = ""
    #: Ship the full canonical ledger transcript in the payload (tests,
    #: audits).  The digest is always included; the full record list is
    #: opt-in because it can dwarf the value at paper scale.
    keep_transcript: bool = False
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.task not in LUMOS_TASKS:
            raise ValueError(f"task must be one of {LUMOS_TASKS}, got {self.task!r}")

    def key(self) -> str:
        parts = [
            "lumos",
            self.graph_spec.fingerprint(),
            fingerprint_value(self.config.constructor),
            fingerprint_value(self.config.trainer),
            f"seed={self.config.seed}",
            f"task={self.task}",
            f"split={self.split_seed}",
            f"transcript={self.keep_transcript}",
        ]
        # The fault scenario enters the fingerprint only when it can perturb
        # the run: the component is omitted for empty scenarios so the
        # fault-free key reproduces the pre-fault cache keys byte-for-byte,
        # while distinct non-empty scenarios never share cached results.
        if not self.config.faults.is_empty():
            parts.append(f"faults={fingerprint_value(self.config.faults)}")
        return stage_key(*parts)

    def stage_chain(self) -> Tuple[Tuple[str, str], ...]:
        from ..core.lumos import normalized_graph
        from ..engine.pipeline import build_lumos_pipeline
        from ..engine.stages import PipelineContext

        graph = normalized_graph(self.graph_spec.load())
        pipeline = build_lumos_pipeline(store=ArtifactStore())
        context = PipelineContext(
            graph=graph, config=self.config, rng=np.random.default_rng(self.config.seed)
        )
        keys = pipeline.stage_keys(context)
        return tuple((stage.name, keys[stage.name]) for stage in pipeline.stages)

    def execute(self, store: ArtifactStore) -> Dict[str, Any]:
        from ..core.lumos import LumosSystem

        graph = self.graph_spec.load()
        system = LumosSystem(graph, self.config, store=store)
        if self.task == "supervised":
            split = split_nodes(graph, seed=self.split_seed)
            value = system.run_supervised(split).test_accuracy
        elif self.task == "unsupervised":
            edge_split = split_edges(graph, seed=self.split_seed)
            value = system.run_unsupervised(edge_split).test_auc
        elif self.task == "robustness":
            split = split_nodes(graph, seed=self.split_seed)
            result = system.run_supervised(split)
            trainer = system.trainer()
            stats = trainer.fault_stats or {}
            value = {
                "test_accuracy": result.test_accuracy,
                "best_val_accuracy": result.best_val_accuracy,
                "rounds_per_device": result.communication_rounds_per_device,
                "mean_epoch_time": stats.get(
                    "mean_epoch_time", result.simulated_epoch_time
                ),
                "mean_participation": stats.get("mean_participation", 1.0),
                "offline_device_rounds": stats.get("offline_device_rounds", 0.0),
                "evicted_device_rounds": stats.get("evicted_device_rounds", 0.0),
                "lost_update_rounds": stats.get("lost_update_rounds", 0.0),
                "skipped_updates": stats.get("skipped_updates", 0.0),
                "dropped_messages": float(
                    system.environment.ledger.total_dropped_messages()
                ),
                "dropped_bytes": float(
                    system.environment.ledger.total_dropped_bytes()
                ),
            }
        elif self.task == "workload":
            value = system.workload_distribution()
        else:  # system_cost
            trainer = system.trainer()
            entry: Dict[str, float] = {}
            for task in ("supervised", "unsupervised"):
                profile = trainer.communication_profile(task)
                entry[f"{task}_rounds_per_device"] = float(
                    profile["per_device_rounds"].mean()
                )
                entry[f"{task}_epoch_time"] = trainer.simulated_epoch_time(task)
            entry["max_workload"] = float(system.workload_distribution().max())
            value = entry

        construction = system.construct_trees()
        ledger = system.environment.ledger
        records = ledger.message_records()
        return {
            "value": value,
            "ledger_summary": ledger.summary(system.environment.num_devices),
            "transcript_digest": _transcript_digest(records),
            "ledger_records": tuple(records) if self.keep_transcript else None,
            "accountant": construction.transcript.snapshot(),
            "rng_state": system.rng.bit_generator.state,
        }


@dataclass(frozen=True)
class BaselineItem(WorkItem):
    """One baseline training arm (centralized / LPGNN / naive FedGNN)."""

    method: str = "centralized"
    task: str = "supervised"
    graph_spec: GraphSpec = field(default_factory=lambda: GraphSpec(dataset="facebook"))
    backbone: str = "gcn"
    epochs: int = 80
    seed: int = 0
    split_seed: int = 0
    label: str = ""
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        methods = BASELINE_METHODS.get(self.task)
        if methods is None:
            raise ValueError(f"task must be one of {tuple(BASELINE_METHODS)}, got {self.task!r}")
        if self.method not in methods:
            raise ValueError(
                f"method must be one of {methods} for task {self.task!r}, got {self.method!r}"
            )

    def key(self) -> str:
        return stage_key(
            "baseline",
            self.method,
            self.task,
            self.graph_spec.fingerprint(),
            f"backbone={self.backbone}",
            f"epochs={self.epochs}",
            f"seed={self.seed}",
            f"split={self.split_seed}",
        )

    def execute(self, store: ArtifactStore) -> Dict[str, Any]:
        from .. import baselines

        graph = self.graph_spec.load()
        if self.task == "supervised":
            split = split_nodes(graph, seed=self.split_seed)
            trainers = {
                "centralized": baselines.train_centralized_supervised,
                "lpgnn": baselines.train_lpgnn_supervised,
                "naive_fedgnn": baselines.train_naive_fedgnn_supervised,
            }
            result = trainers[self.method](
                graph, split, backbone=self.backbone, epochs=self.epochs, seed=self.seed
            )
            return _empty_payload(result.test_accuracy)
        edge_split = split_edges(graph, seed=self.split_seed)
        trainers = {
            "centralized": baselines.train_centralized_unsupervised,
            "naive_fedgnn": baselines.train_naive_fedgnn_unsupervised,
        }
        result = trainers[self.method](
            graph, edge_split, backbone=self.backbone, epochs=self.epochs, seed=self.seed
        )
        return _empty_payload(result.test_auc)


@dataclass(frozen=True)
class CallableItem(WorkItem):
    """An arbitrary importable callable — the escape hatch for custom grids.

    ``target`` is ``"package.module:function"``; arguments must be picklable
    *and* fingerprintable (plain scalars/containers/dataclasses — see
    :func:`repro.engine.fingerprint.fingerprint_value`), which is what makes
    the item content-keyed rather than identity-keyed.
    """

    target: str = ""
    args: tuple = ()
    kwargs: tuple = ()  # sorted (name, value) pairs; a dict is not hashable
    label: str = ""
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if ":" not in self.target:
            raise ValueError("target must look like 'package.module:function'")

    def key(self) -> str:
        return stage_key(
            "callable",
            self.target,
            fingerprint_value(tuple(self.args)),
            fingerprint_value(tuple(self.kwargs)),
        )

    def execute(self, store: ArtifactStore) -> Dict[str, Any]:
        module_name, _, attribute = self.target.partition(":")
        function = getattr(importlib.import_module(module_name), attribute)
        return _empty_payload(function(*self.args, **dict(self.kwargs)))


def execute_item(item: WorkItem, store: ArtifactStore) -> Dict[str, Any]:
    """Run one item against ``store`` and return its payload dictionary.

    This is the single entry point both executors share: the serial executor
    calls it inline, worker processes call it from their task loop.  The
    payload schema is fixed (``value`` / ``ledger_summary`` /
    ``transcript_digest`` / ``ledger_records`` / ``accountant`` /
    ``rng_state``) so merge and equivalence checks never depend on the item
    flavour.
    """
    return item.execute(store)
