"""Graph Attention Network layer (Velickovic et al., ICLR 2018).

Multi-head additive attention computed edge-wise: for a directed edge
``j -> i`` the unnormalised score is

    e_ij = LeakyReLU(a_src . (W h_j) + a_dst . (W h_i))

normalised with a softmax over the incoming edges of ``i``.  Heads are
concatenated on hidden layers and averaged on output layers, matching the
reference implementation.  The paper's Lumos configuration uses 4 heads.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn import init
from ..nn.backend import get_backend
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor


class GATLayer(Module):
    """One multi-head graph attention layer operating on an edge index."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_heads: int = 4,
        concat_heads: bool = True,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("GATLayer dimensions must be positive")
        if num_heads <= 0:
            raise ValueError("num_heads must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.num_heads = num_heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        # One weight matrix per head packed into a single (in, heads*out) matrix.
        self.weight = Parameter(
            init.xavier_uniform((in_features, num_heads * out_features), rng=rng), name="weight"
        )
        self.attention_src = Parameter(
            init.xavier_uniform((num_heads, out_features), rng=rng), name="attention_src"
        )
        self.attention_dst = Parameter(
            init.xavier_uniform((num_heads, out_features), rng=rng), name="attention_dst"
        )
        self.bias = Parameter(
            init.zeros((num_heads * out_features if concat_heads else out_features,)), name="bias"
        )

    @property
    def output_dim(self) -> int:
        """Dimensionality of the produced node embeddings."""
        return self.num_heads * self.out_features if self.concat_heads else self.out_features

    def forward(
        self,
        features: Tensor,
        edge_index: np.ndarray,
        activation: Optional[str] = None,
    ) -> Tensor:
        """Apply attention over ``edge_index`` (shape ``(2, E)``, src -> dst).

        ``edge_index`` should include self loops; :func:`repro.gnn.models.
        build_edge_index` adds them.  ``activation`` (``"relu"``) is folded
        into the fused layer node when the backend allows fusion, and applied
        as a separate tensor op on the composite path.
        """
        edge_index = np.asarray(edge_index, dtype=np.int64)
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, E)")
        num_nodes = features.data.shape[0]
        src, dst = edge_index

        if get_backend().allow_fused:
            # Whole layer as a single autograd node: transform, attention
            # logits, leaky-relu + segment softmax, weighted aggregation,
            # head concat/mean, bias and activation with closed-form
            # adjoints (parity pinned by tests/test_nn_backend.py).
            return F.fused_gat_layer(
                features,
                src,
                dst,
                self.weight,
                self.attention_src,
                self.attention_dst,
                self.bias,
                self.num_heads,
                self.out_features,
                self.concat_heads,
                self.negative_slope,
                activation=activation,
            )

        transformed = features @ self.weight  # (N, H*F)
        transformed = transformed.reshape(num_nodes, self.num_heads, self.out_features)

        # Per-node attention logits: (N, H)
        src_scores = (transformed * self.attention_src.reshape(1, self.num_heads, self.out_features)).sum(axis=-1)
        dst_scores = (transformed * self.attention_dst.reshape(1, self.num_heads, self.out_features)).sum(axis=-1)

        # Per-edge logits and softmax over incoming edges of each destination.
        edge_logits = F.gather(src_scores, src) + F.gather(dst_scores, dst)
        edge_logits = edge_logits.leaky_relu(self.negative_slope)
        attention = F.segment_softmax(edge_logits, dst, num_nodes)  # (E, H)

        # Weighted aggregation of source embeddings into destinations.
        messages = F.gather(transformed, src)  # (E, H, F)
        weighted = messages * attention.reshape(-1, self.num_heads, 1)
        aggregated = F.scatter_add(weighted, dst, num_nodes)  # (N, H, F)

        if self.concat_heads:
            out = aggregated.reshape(num_nodes, self.num_heads * self.out_features)
        else:
            out = aggregated.mean(axis=1)
        out = out + self.bias
        if activation == "relu":
            out = out.relu()
        return out

    def __repr__(self) -> str:
        return (
            f"GATLayer(in={self.in_features}, out={self.out_features}, "
            f"heads={self.num_heads}, concat={self.concat_heads})"
        )
