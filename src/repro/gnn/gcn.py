"""Graph Convolutional Network layer (Kipf & Welling, ICLR 2017).

The layer computes ``H' = Â H W + b`` with ``Â = D^-1/2 (A + I) D^-1/2``.
The normalised adjacency is supplied by the caller as a constant scipy sparse
matrix so that the same layer works on the global graph (centralized
baseline), on the per-device trees of Lumos, and on the block-diagonal union
of all trees used for efficient simulation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..nn import functional as F
from ..nn import init
from ..nn.backend import PreparedMatrix, get_backend
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor, _as_array

#: Engage the zero-row compressed propagation only when at least this
#: fraction of input rows is exactly zero.  Union-graph feature matrices
#: qualify (virtual tree nodes carry all-zero rows); post-relu hidden
#: activations do not, which keeps the per-call column-slice cost off the
#: evaluation path where the input changes every epoch.
_COMPRESS_ZERO_FRACTION = 0.25


def _compress_zero_rows(matrix, data: np.ndarray, backend):
    """Drop all-zero rows of ``data`` and the matching operator columns.

    ``matrix @ data`` only reads the columns of ``matrix`` paired with
    nonzero rows of ``data``: the omitted products are exact zeros, so the
    compressed product equals the full one (up to IEEE ``-0.0``/``+0.0``
    on rows whose every contribution was dropped, which compare equal).
    Returns ``None`` when too few rows are zero for the slice to pay off.
    """
    nonzero = np.flatnonzero(data.any(axis=1))
    if nonzero.size > (1.0 - _COMPRESS_ZERO_FRACTION) * data.shape[0]:
        return None
    csr = matrix.csr if isinstance(matrix, PreparedMatrix) else sp.csr_matrix(matrix)
    compressed = backend.prepare_matrix(sp.csr_matrix(csr[:, nonzero]))
    rows = np.ascontiguousarray(data[nonzero])
    return compressed, rows, nonzero


class GCNLayer(Module):
    """One graph convolution: ``propagate(adjacency, X) @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("GCNLayer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None
        # Memos of the last constant-input propagation (see _propagate_constant).
        self._propagated_input_cache = None
        self._forward_cache = None

    def forward(
        self,
        features: Tensor,
        adjacency: sp.spmatrix,
        activation: Optional[str] = None,
    ) -> Tensor:
        """Apply the convolution.

        Parameters
        ----------
        features:
            Node feature tensor of shape ``(N, in_features)``.
        adjacency:
            Pre-normalised propagation matrix of shape ``(N, N)``.
        activation:
            Optional activation (``"relu"``) folded into the layer.  On the
            fused paths it executes inside the single layer node; on the
            composite path it is applied as a separate tensor op — same
            mathematics either way.
        """
        if adjacency.shape[0] != features.data.shape[0]:
            raise ValueError(
                f"adjacency has {adjacency.shape[0]} rows but features have "
                f"{features.data.shape[0]} rows"
            )
        backend = get_backend()
        if backend.allow_fused:
            if not features.requires_grad:
                return self._propagate_constant(features, adjacency, backend, activation)
            # Whole layer (spmm -> affine -> activation) as one autograd node.
            return F.fused_gcn_layer(
                features, adjacency, self.weight, self.bias, activation=activation
            )
        support = features @ self.weight
        out = F.sparse_matmul(adjacency, support)
        if self.bias is not None:
            out = out + self.bias
        if activation == "relu":
            out = out.relu()
        return out

    def _propagate_constant(
        self, features: Tensor, adjacency, backend, activation: Optional[str] = None
    ) -> Tensor:
        """``(adjacency @ features) @ W + b`` for a constant ``features`` input.

        Two reuse opportunities apply when the input does not require
        gradients (the first GNN layer, and every layer in evaluation mode):

        * associativity — ``Â (X W) = (Â X) W``, and ``Â X`` is constant
          across epochs for the input layer, so it is propagated once and
          every subsequent forward is a single dense matmul; when the input
          is mostly zero rows (see :func:`_compress_zero_rows`) the layer
          instead keeps the compressed pair ``(Â_nz, X_nz)`` and computes
          ``Â_nz (X_nz W)`` — a slimmer gemm plus a cheap sparse product;
        * schedule — the trainer runs one gradient forward and one evaluation
          forward per epoch, and the evaluation pass at epoch ``t`` sees the
          same input/weight/bias arrays as the gradient pass at epoch
          ``t + 1`` (optimizer steps rebind ``Parameter.data``), so the layer
          output itself is reused across the pair.

        Both memos key on object identity with strong references.  The
        backward pass uses the folded adjoint ``W.grad = (Â X)^T grad``.  An
        optional ``activation`` is folded into the memoised value (and its
        mask into the adjoint), so the whole layer stays one autograd node.
        """
        prepared = backend.prepare_matrix(adjacency)
        cached_input = self._propagated_input_cache
        if (
            cached_input is None
            or cached_input[0] is not prepared
            or cached_input[1] is not features.data
        ):
            compressed = _compress_zero_rows(prepared, features.data, backend)
            if compressed is not None:
                # Mostly-zero input (the union graph's virtual rows): keep
                # the compressed operand pair and run ``Â_nz (X_nz W)`` per
                # forward — the slim gemm beats precomputing ``Â X``.
                cached_input = (prepared, features.data, None, compressed)
            else:
                cached_input = (
                    prepared,
                    features.data,
                    backend.spmm(prepared, features.data),
                    None,
                )
            self._propagated_input_cache = cached_input
        propagated, compressed = cached_input[2], cached_input[3]

        bias_data = self.bias.data if self.bias is not None else None
        entry = self._forward_cache
        if (
            entry is None
            or entry[0] is not cached_input
            or entry[1] is not self.weight.data
            or entry[2] is not bias_data
            or entry[3] != activation
        ):
            if propagated is not None:
                value = propagated @ self.weight.data
            else:
                value = backend.spmm(compressed[0], compressed[1] @ self.weight.data)
            if bias_data is not None:
                value = value + bias_data
            mask = None
            if activation == "relu":
                mask = (value > 0).astype(np.float64)
                value = value * mask
            entry = (cached_input, self.weight.data, bias_data, activation, value, mask)
            self._forward_cache = entry
        value, mask = entry[4], entry[5]
        weight, bias = self.weight, self.bias

        def backward(grad: np.ndarray) -> None:
            grad = _as_array(grad)
            if mask is not None:
                grad = grad * mask
            if propagated is not None:
                weight._accumulate(propagated.T @ grad)
            else:
                weight._accumulate(
                    compressed[1].T @ backend.spmm_t(compressed[0], grad)
                )
            if bias is not None:
                bias._accumulate(grad)

        parents = (weight,) if bias is None else (weight, bias)
        return Tensor._make(value, parents, backward)

    def __repr__(self) -> str:
        return f"GCNLayer(in={self.in_features}, out={self.out_features})"
