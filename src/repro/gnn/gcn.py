"""Graph Convolutional Network layer (Kipf & Welling, ICLR 2017).

The layer computes ``H' = Â H W + b`` with ``Â = D^-1/2 (A + I) D^-1/2``.
The normalised adjacency is supplied by the caller as a constant scipy sparse
matrix so that the same layer works on the global graph (centralized
baseline), on the per-device trees of Lumos, and on the block-diagonal union
of all trees used for efficient simulation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..nn import functional as F
from ..nn import init
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor


class GCNLayer(Module):
    """One graph convolution: ``propagate(adjacency, X) @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("GCNLayer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        """Apply the convolution.

        Parameters
        ----------
        features:
            Node feature tensor of shape ``(N, in_features)``.
        adjacency:
            Pre-normalised propagation matrix of shape ``(N, N)``.
        """
        if adjacency.shape[0] != features.data.shape[0]:
            raise ValueError(
                f"adjacency has {adjacency.shape[0]} rows but features have "
                f"{features.data.shape[0]} rows"
            )
        support = features @ self.weight
        out = F.sparse_matmul(adjacency, support)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"GCNLayer(in={self.in_features}, out={self.out_features})"
