"""Graph Convolutional Network layer (Kipf & Welling, ICLR 2017).

The layer computes ``H' = Â H W + b`` with ``Â = D^-1/2 (A + I) D^-1/2``.
The normalised adjacency is supplied by the caller as a constant scipy sparse
matrix so that the same layer works on the global graph (centralized
baseline), on the per-device trees of Lumos, and on the block-diagonal union
of all trees used for efficient simulation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..nn import functional as F
from ..nn import init
from ..nn.backend import get_backend
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor, _as_array


class GCNLayer(Module):
    """One graph convolution: ``propagate(adjacency, X) @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("GCNLayer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None
        # Memos of the last constant-input propagation (see _propagate_constant).
        self._propagated_input_cache = None
        self._forward_cache = None

    def forward(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        """Apply the convolution.

        Parameters
        ----------
        features:
            Node feature tensor of shape ``(N, in_features)``.
        adjacency:
            Pre-normalised propagation matrix of shape ``(N, N)``.
        """
        if adjacency.shape[0] != features.data.shape[0]:
            raise ValueError(
                f"adjacency has {adjacency.shape[0]} rows but features have "
                f"{features.data.shape[0]} rows"
            )
        backend = get_backend()
        if backend.allow_fused and not features.requires_grad:
            return self._propagate_constant(features, adjacency, backend)
        support = features @ self.weight
        out = F.sparse_matmul(adjacency, support)
        if self.bias is not None:
            out = out + self.bias
        return out

    def _propagate_constant(self, features: Tensor, adjacency, backend) -> Tensor:
        """``(adjacency @ features) @ W + b`` for a constant ``features`` input.

        Two reuse opportunities apply when the input does not require
        gradients (the first GNN layer, and every layer in evaluation mode):

        * associativity — ``Â (X W) = (Â X) W``, and ``Â X`` is constant
          across epochs for the input layer, so it is propagated once and
          every subsequent forward is a single dense matmul;
        * schedule — the trainer runs one gradient forward and one evaluation
          forward per epoch, and the evaluation pass at epoch ``t`` sees the
          same input/weight/bias arrays as the gradient pass at epoch
          ``t + 1`` (optimizer steps rebind ``Parameter.data``), so the layer
          output itself is reused across the pair.

        Both memos key on object identity with strong references.  The
        backward pass uses the folded adjoint ``W.grad = (Â X)^T grad``.
        """
        prepared = backend.prepare_matrix(adjacency)
        cached_input = self._propagated_input_cache
        if (
            cached_input is None
            or cached_input[0] is not prepared
            or cached_input[1] is not features.data
        ):
            cached_input = (prepared, features.data, backend.spmm(prepared, features.data))
            self._propagated_input_cache = cached_input
        propagated = cached_input[2]

        bias_data = self.bias.data if self.bias is not None else None
        entry = self._forward_cache
        if (
            entry is None
            or entry[0] is not propagated
            or entry[1] is not self.weight.data
            or entry[2] is not bias_data
        ):
            value = propagated @ self.weight.data
            if bias_data is not None:
                value = value + bias_data
            entry = (propagated, self.weight.data, bias_data, value)
            self._forward_cache = entry
        value = entry[3]
        weight, bias = self.weight, self.bias

        def backward(grad: np.ndarray) -> None:
            grad = _as_array(grad)
            weight._accumulate(propagated.T @ grad)
            if bias is not None:
                bias._accumulate(grad)

        parents = (weight,) if bias is None else (weight, bias)
        return Tensor._make(value, parents, backward)

    def __repr__(self) -> str:
        return f"GCNLayer(in={self.in_features}, out={self.out_features})"
