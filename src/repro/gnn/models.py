"""GNN encoders and task heads used by Lumos and all baselines.

The paper's configuration: 2 message-passing layers, hidden and output
dimension 16, ReLU + dropout(0.01) between layers, GAT with 4 attention
heads; decoders are a linear layer + softmax for node classification
(Eq. 32) and an inner-product + sigmoid for link prediction (Eq. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional

import numpy as np
import scipy.sparse as sp

from ..graph.sparse import symmetric_normalize
from ..nn import functional as F
from ..nn.layers import Dropout, Linear
from ..nn.module import Module
from ..nn.tensor import Tensor
from .gat import GATLayer
from .gcn import GCNLayer

BackboneName = Literal["gcn", "gat"]


@dataclass(frozen=True)
class EncoderConfig:
    """Hyper-parameters of a GNN encoder (defaults follow the paper)."""

    backbone: str = "gcn"
    num_layers: int = 2
    hidden_dim: int = 16
    output_dim: int = 16
    dropout: float = 0.01
    num_heads: int = 4

    def __post_init__(self) -> None:
        if self.backbone not in ("gcn", "gat"):
            raise ValueError(f"unknown backbone '{self.backbone}'")
        if self.num_layers < 1:
            raise ValueError("encoder needs at least one layer")


class GraphInput:
    """Bundle of the constant graph structure consumed by an encoder.

    ``adjacency`` is the GCN propagation matrix; ``edge_index`` (with self
    loops) drives the GAT layers.  Both describe the *same* graph.
    """

    def __init__(self, adjacency: sp.spmatrix, edge_index: np.ndarray) -> None:
        self.adjacency = adjacency.tocsr()
        self.edge_index = np.asarray(edge_index, dtype=np.int64)
        if self.edge_index.ndim != 2 or self.edge_index.shape[0] != 2:
            raise ValueError("edge_index must have shape (2, E)")

    @property
    def num_nodes(self) -> int:
        return int(self.adjacency.shape[0])

    @classmethod
    def from_graph(cls, graph) -> "GraphInput":
        """Build the propagation structures from a :class:`repro.graph.Graph`."""
        adjacency = symmetric_normalize(graph.adjacency(), self_loops=True)
        edge_index = graph.directed_edge_index(add_self_loops=True)
        return cls(adjacency, edge_index)

    @classmethod
    def from_adjacency(cls, adjacency: sp.spmatrix) -> "GraphInput":
        """Build from a raw (unnormalised) adjacency matrix."""
        adjacency = adjacency.tocsr()
        coo = adjacency.tocoo()
        n = adjacency.shape[0]
        src = np.concatenate([coo.col, np.arange(n)])
        dst = np.concatenate([coo.row, np.arange(n)])
        return cls(symmetric_normalize(adjacency, self_loops=True), np.stack([src, dst]))


class GNNEncoder(Module):
    """Stack of GCN or GAT layers producing node embeddings (paper Eq. 1-2)."""

    def __init__(
        self,
        in_features: int,
        config: EncoderConfig = EncoderConfig(),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.in_features = in_features
        rng = rng if rng is not None else np.random.default_rng()

        dims: List[int] = [in_features]
        dims += [config.hidden_dim] * (config.num_layers - 1)
        dims += [config.output_dim]

        self._layer_names: List[str] = []
        for index in range(config.num_layers):
            is_last = index == config.num_layers - 1
            if config.backbone == "gcn":
                layer: Module = GCNLayer(dims[index], dims[index + 1], rng=rng)
            else:
                if is_last:
                    layer = GATLayer(
                        dims[index], dims[index + 1], num_heads=config.num_heads,
                        concat_heads=False, rng=rng,
                    )
                else:
                    # Hidden GAT layers concatenate heads; keep the overall
                    # hidden width equal to hidden_dim by splitting it.
                    per_head = max(1, dims[index + 1] // config.num_heads)
                    layer = GATLayer(
                        dims[index], per_head, num_heads=config.num_heads,
                        concat_heads=True, rng=rng,
                    )
                    dims[index + 1] = per_head * config.num_heads
            name = f"layer_{index}"
            self.add_module(name, layer)
            self._layer_names.append(name)
        self.dropout = Dropout(config.dropout, rng=rng)
        self.output_dim = dims[-1]

    def _apply_layer(
        self, layer: Module, hidden: Tensor, graph_input: GraphInput, activation=None
    ) -> Tensor:
        if isinstance(layer, GCNLayer):
            return layer(hidden, graph_input.adjacency, activation=activation)
        return layer(hidden, graph_input.edge_index, activation=activation)

    @property
    def final_layer(self) -> Module:
        """The last message-passing layer (foldable with pooling for GCN)."""
        return self._modules[self._layer_names[-1]]

    def forward_hidden(self, features: Tensor, graph_input: GraphInput) -> Tensor:
        """Run every layer but the last (relu + dropout after each).

        The Lumos model uses this to take over the final layer itself when it
        can fold that layer's propagation with the mean-pool operator.
        """
        hidden = features
        for name in self._layer_names[:-1]:
            hidden = self._apply_layer(
                self._modules[name], hidden, graph_input, activation="relu"
            )
            hidden = self.dropout(hidden)
        return hidden

    def forward(self, features: Tensor, graph_input: GraphInput) -> Tensor:
        """Encode all nodes of the graph described by ``graph_input``."""
        hidden = self.forward_hidden(features, graph_input)
        return self._apply_layer(self.final_layer, hidden, graph_input)


class NodeClassifier(Module):
    """Encoder + linear READ-out for supervised node classification (Eq. 32)."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        config: EncoderConfig = EncoderConfig(),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.encoder = GNNEncoder(in_features, config, rng=rng)
        self.head = Linear(self.encoder.output_dim, num_classes, rng=rng)

    def forward(self, features: Tensor, graph_input: GraphInput) -> Tensor:
        """Return class logits for every node."""
        return self.head(self.encoder(features, graph_input))

    def predict(self, features: Tensor, graph_input: GraphInput) -> np.ndarray:
        """Return the arg-max class prediction per node."""
        logits = self.forward(features, graph_input)
        return np.argmax(logits.data, axis=1)


class LinkPredictor(Module):
    """Encoder + inner-product decoder for link prediction (Eq. 4)."""

    def __init__(
        self,
        in_features: int,
        config: EncoderConfig = EncoderConfig(),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.encoder = GNNEncoder(in_features, config, rng=rng)

    def forward(self, features: Tensor, graph_input: GraphInput) -> Tensor:
        """Return node embeddings."""
        return self.encoder(features, graph_input)

    def score_pairs(self, embeddings: Tensor, pairs: np.ndarray) -> Tensor:
        """Return logits (inner products) for the vertex ``pairs`` (shape (P, 2))."""
        pairs = np.asarray(pairs, dtype=np.int64)
        left = F.gather(embeddings, pairs[:, 0])
        right = F.gather(embeddings, pairs[:, 1])
        return (left * right).sum(axis=-1)

    def predict_proba(self, embeddings: Tensor, pairs: np.ndarray) -> np.ndarray:
        """Return edge-existence probabilities for ``pairs``."""
        return self.score_pairs(embeddings, pairs).sigmoid().data


def build_edge_index(adjacency: sp.spmatrix, add_self_loops: bool = True) -> np.ndarray:
    """Return a ``(2, E)`` directed edge index from a sparse adjacency."""
    coo = adjacency.tocoo()
    src = coo.col
    dst = coo.row
    if add_self_loops:
        n = adjacency.shape[0]
        src = np.concatenate([src, np.arange(n)])
        dst = np.concatenate([dst, np.arange(n)])
    return np.stack([src, dst]).astype(np.int64)
