"""Pooling functions used by the cross-device POOL layer (paper Eq. 31)."""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..nn import functional as F
from ..nn.backend import get_backend
from ..nn.tensor import Tensor


def mean_pool(embeddings: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average the rows of ``embeddings`` that share a segment id.

    This is the pooling function the paper uses: "We use an average pooling
    function in the experiment" — the rows are leaf embeddings coming from
    different devices' trees and the segments are global vertex ids.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    sums = F.scatter_add(embeddings, segment_ids, num_segments)
    counts = get_backend().segment_counts(segment_ids, num_segments)
    counts = np.maximum(counts, 1.0).reshape(-1, *([1] * (embeddings.data.ndim - 1)))
    return sums / Tensor(counts)


def sum_pool(embeddings: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum the rows of ``embeddings`` that share a segment id."""
    return F.scatter_add(embeddings, np.asarray(segment_ids, dtype=np.int64), num_segments)


def max_pool(embeddings: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Element-wise maximum per segment (no gradient through ties beyond argmax)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    data = embeddings.data
    out = get_backend().segment_max(data, segment_ids, num_segments)
    out = np.where(np.isfinite(out), out, 0.0)
    argmax_mask = (data == out[segment_ids]).astype(np.float64)

    def backward(grad: np.ndarray) -> None:
        embeddings._accumulate(argmax_mask * np.asarray(grad)[segment_ids])

    return Tensor._make(out, (embeddings,), backward)


POOLING_FUNCTIONS: Dict[str, Callable[[Tensor, np.ndarray, int], Tensor]] = {
    "mean": mean_pool,
    "sum": sum_pool,
    "max": max_pool,
}


def get_pooling(name: str) -> Callable[[Tensor, np.ndarray, int], Tensor]:
    """Look up a pooling function by name."""
    try:
        return POOLING_FUNCTIONS[name]
    except KeyError as error:
        raise KeyError(
            f"unknown pooling '{name}'; available: {sorted(POOLING_FUNCTIONS)}"
        ) from error
