"""GNN layers (GCN, GAT), encoders, task heads and pooling functions."""

from .gat import GATLayer
from .gcn import GCNLayer
from .models import (
    EncoderConfig,
    GNNEncoder,
    GraphInput,
    LinkPredictor,
    NodeClassifier,
    build_edge_index,
)
from .pooling import POOLING_FUNCTIONS, get_pooling, max_pool, mean_pool, sum_pool

__all__ = [
    "GCNLayer",
    "GATLayer",
    "EncoderConfig",
    "GraphInput",
    "GNNEncoder",
    "NodeClassifier",
    "LinkPredictor",
    "build_edge_index",
    "mean_pool",
    "sum_pool",
    "max_pool",
    "get_pooling",
    "POOLING_FUNCTIONS",
]
