"""High-level Lumos system API.

:class:`LumosSystem` wires the full pipeline together for a given global
graph: node-level partition, federated environment, heterogeneity-aware tree
construction, LDP embedding initialisation and tree-based GNN training.  This
is the class the examples, benchmarks and evaluation harness use.

Typical usage::

    graph = load_dataset("facebook")
    config = default_config_for("facebook").with_backbone("gcn")
    system = LumosSystem(graph, config)
    result = system.run_supervised(split_nodes(graph, seed=0), epochs=100)
    print(result.test_accuracy)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..caching import IdentityCache

from ..engine.pipeline import build_lumos_pipeline
from ..engine.stages import PipelineContext
from ..engine.store import ArtifactStore, default_store
from ..graph.graph import Graph
from ..graph.splits import EdgeSplit, NodeSplit
from .config import LumosConfig
from .constructor import TreeConstructionResult
from .embedding_init import EmbeddingInitializationResult
from .trainer import (
    EpochCostModel,
    LumosModel,
    SupervisedHistory,
    TreeBasedGNNTrainer,
    TreeBatch,
    UnsupervisedHistory,
    train_supervised_many,
)


# Memo of graph -> normalized graph.  Sweeps construct many LumosSystems
# over one graph; sharing the normalized instance amortizes the
# normalization *and* lets the engine's per-object graph-fingerprint memo
# hit across sweep points.
_normalized_graphs = IdentityCache()


def normalized_graph(graph: Graph) -> Graph:
    """The per-process normalized twin of ``graph`` (memoised by identity).

    Public because the parallel runtime plans stage keys over the *same*
    normalized instance a ``LumosSystem`` would train on — sharing the memo
    keeps the graph-fingerprint cache hot across planner and systems.
    """
    normalized = _normalized_graphs.get(graph)
    if normalized is None:
        normalized = _normalized_graphs.put(graph, graph.normalized_features(0.0, 1.0))
    return normalized


_normalized_graph = normalized_graph


@dataclass
class LumosSupervisedResult:
    """Outcome of a supervised (node classification) Lumos run."""

    test_accuracy: float
    best_val_accuracy: float
    history: SupervisedHistory
    construction: TreeConstructionResult
    communication_rounds_per_device: float
    simulated_epoch_time: float
    ledger_summary: Dict[str, float] = field(default_factory=dict)
    #: Participation/degradation counters when the run trained under a
    #: non-empty fault scenario; ``None`` on the fully-available path.
    fault_summary: Optional[Dict[str, float]] = None


@dataclass
class LumosUnsupervisedResult:
    """Outcome of an unsupervised (link prediction) Lumos run."""

    test_auc: float
    best_val_auc: float
    history: UnsupervisedHistory
    construction: TreeConstructionResult
    communication_rounds_per_device: float
    simulated_epoch_time: float
    ledger_summary: Dict[str, float] = field(default_factory=dict)


class LumosSystem:
    """End-to-end Lumos deployment over one global graph.

    The expensive pipeline phases (node-level partition, tree construction,
    LDP embedding initialisation, union-graph assembly) run through the
    staged execution engine (:mod:`repro.engine`): each stage's result is
    stored in a content-keyed :class:`~repro.engine.store.ArtifactStore` and
    reused by any later system whose inputs match — e.g. an epsilon sweep
    re-runs only the LDP exchange onwards, a backbone sweep only the
    training.  Pass ``store=`` to isolate a system from the process-wide
    default store.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[LumosConfig] = None,
        cost_model: Optional[EpochCostModel] = None,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        self.graph = _normalized_graph(graph)
        self.config = config if config is not None else LumosConfig()
        self.cost_model = cost_model if cost_model is not None else EpochCostModel()
        self.rng = np.random.default_rng(self.config.seed)

        self.store = store if store is not None else default_store()
        self.pipeline = build_lumos_pipeline(self.store)
        self._context = PipelineContext(graph=self.graph, config=self.config, rng=self.rng)
        self.pipeline.run(self._context, through="partition")
        self.environment = self._context.environment
        self._trainer: Optional[TreeBasedGNNTrainer] = None

    # ------------------------------------------------------------------ #
    # Pipeline stages (lazily executed, cached and shared via the store)
    # ------------------------------------------------------------------ #
    def _stage(self, name: str):
        return self.pipeline.run(self._context, through=name).artifacts[name]

    def advance(self, through: str):
        """Run the pipeline up to and including stage ``through`` (cached).

        Returns that stage's artifact.  The parallel runtime uses this to
        compute a shared stage prefix once before fanning work items out to
        worker processes.
        """
        return self._stage(through)

    def construct_trees(self) -> TreeConstructionResult:
        """Run the heterogeneity-aware tree constructor (cached)."""
        return self._stage("construction")

    def initialize_embeddings(self) -> EmbeddingInitializationResult:
        """Run the LDP feature exchange (cached)."""
        return self._stage("ldp_init")

    def tree_batch(self) -> TreeBatch:
        """Assemble (or fetch) the block-diagonal union graph."""
        return self._stage("tree_batch")

    def trainer(self) -> TreeBasedGNNTrainer:
        """Build (and cache) the tree-based GNN trainer."""
        if self._trainer is None:
            construction = self.construct_trees()
            initialization = self.initialize_embeddings()
            batch = self.tree_batch()
            self._trainer = TreeBasedGNNTrainer(
                self.environment,
                construction,
                initialization,
                self.config.trainer,
                rng=self.rng,
                cost_model=self.cost_model,
                batch=batch,
                faults=self.config.faults,
            )
        return self._trainer

    def engine_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss counters of the artifact store backing this system."""
        return self.store.summary()

    # ------------------------------------------------------------------ #
    # End-to-end runs
    # ------------------------------------------------------------------ #
    def run_supervised(
        self,
        split: NodeSplit,
        epochs: Optional[int] = None,
        log_every: int = 0,
    ) -> LumosSupervisedResult:
        """Train and evaluate the supervised node-classification task."""
        if self.graph.labels is None:
            raise ValueError("supervised training requires a labeled graph")
        trainer = self.trainer()
        _, history = trainer.train_supervised(
            self.graph.labels, split, epochs=epochs, log_every=log_every
        )
        profile = trainer.communication_profile("supervised")
        return LumosSupervisedResult(
            test_accuracy=history.test_accuracy,
            best_val_accuracy=history.best_val_accuracy,
            history=history,
            construction=self.construct_trees(),
            communication_rounds_per_device=float(profile["per_device_rounds"].mean()),
            simulated_epoch_time=trainer.simulated_epoch_time("supervised"),
            ledger_summary=self.environment.ledger.summary(self.environment.num_devices),
            fault_summary=trainer.fault_stats if trainer.faults is not None else None,
        )

    def run_unsupervised(
        self,
        edge_split: EdgeSplit,
        epochs: Optional[int] = None,
        log_every: int = 0,
    ) -> LumosUnsupervisedResult:
        """Train and evaluate the unsupervised link-prediction task."""
        trainer = self.trainer()
        _, history = trainer.train_unsupervised(edge_split, epochs=epochs, log_every=log_every)
        profile = trainer.communication_profile("unsupervised")
        return LumosUnsupervisedResult(
            test_auc=history.test_auc,
            best_val_auc=history.best_val_auc,
            history=history,
            construction=self.construct_trees(),
            communication_rounds_per_device=float(profile["per_device_rounds"].mean()),
            simulated_epoch_time=trainer.simulated_epoch_time("unsupervised"),
            ledger_summary=self.environment.ledger.summary(self.environment.num_devices),
        )

    # ------------------------------------------------------------------ #
    # System-side inspection helpers (used by Fig. 7 / Fig. 8)
    # ------------------------------------------------------------------ #
    def workload_distribution(self) -> np.ndarray:
        """Per-device workloads after tree construction."""
        return self.construct_trees().workload_array()

    def summary(self) -> Dict[str, float]:
        """Headline system statistics."""
        construction = self.construct_trees()
        result = {
            "num_devices": float(self.environment.num_devices),
            "max_workload": float(construction.max_workload()),
            "total_tree_nodes": float(construction.total_tree_nodes()),
            "secure_comparison_bits": float(construction.transcript.bits),
            "secure_comparisons": float(construction.transcript.comparisons),
        }
        result.update(self.environment.ledger.summary(self.environment.num_devices))
        return result


def run_supervised_many(
    systems: Sequence[LumosSystem],
    split: NodeSplit,
    epochs: Optional[int] = None,
) -> List[LumosSupervisedResult]:
    """Run the supervised task on several systems with one batched trainer.

    The systems of an epsilon sweep share the union-graph structure and
    differ only in their LDP feature exchange, so their training loops can be
    stacked along a leading point axis and pushed through batched backend
    kernels (:func:`repro.core.trainer.train_supervised_many`).  Results are
    identical — metrics, histories, ledger transcripts, RNG states — to
    calling :meth:`LumosSystem.run_supervised` on each system in order; when
    the batching preconditions do not hold this degrades to exactly that
    sequential loop.
    """
    systems = list(systems)
    if not systems:
        return []
    labels = systems[0].graph.labels
    if labels is None or any(
        system.graph.labels is None
        or not np.array_equal(system.graph.labels, labels)
        for system in systems
    ):
        return [system.run_supervised(split, epochs=epochs) for system in systems]
    trainers = [system.trainer() for system in systems]
    outcomes = train_supervised_many(trainers, labels, split, epochs=epochs)
    results: List[LumosSupervisedResult] = []
    for system, trainer, (_, history) in zip(systems, trainers, outcomes):
        profile = trainer.communication_profile("supervised")
        results.append(
            LumosSupervisedResult(
                test_accuracy=history.test_accuracy,
                best_val_accuracy=history.best_val_accuracy,
                history=history,
                construction=system.construct_trees(),
                communication_rounds_per_device=float(
                    profile["per_device_rounds"].mean()
                ),
                simulated_epoch_time=trainer.simulated_epoch_time("supervised"),
                ledger_summary=system.environment.ledger.summary(
                    system.environment.num_devices
                ),
                fault_summary=trainer.fault_stats if trainer.faults is not None else None,
            )
        )
    return results
