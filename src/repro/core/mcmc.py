"""MCMC workload balancing (paper Alg. 2 and Alg. 3).

The iterative balancer repeatedly

1. finds the device ``u`` with the largest workload (Alg. 3),
2. lets ``u`` move ``k`` of its selected neighbours to the other endpoint of
   the corresponding edges (the transition of Eq. 16/17, with
   ``k ~ Uniform{1, ..., round(ln |N_u|)}``),
3. finds the most-loaded device of the transited state,
4. accepts or rejects the transition with the Metropolis-Hastings rule of
   Eq. 18: ``P[accept] = min(1, e^{f(X_t) - f(X'_t)})``.

Two execution modes are provided:

* ``secure=True`` runs every workload comparison of Alg. 3 through the
  simulated CrypTFlow2 protocol (exact message-level simulation; used by the
  correctness tests and small examples);
* ``secure=False`` (default) evaluates the comparisons in the clear but
  charges the *same* analytic communication cost to the transcript
  accountant and ledger — the resulting assignments are identical, and large
  benchmark graphs stay fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..crypto.oblivious_transfer import TranscriptAccountant
from ..crypto.zero_knowledge import WorkloadComparisonProtocol
from ..federation.events import SERVER_ID, MessageKind
from ..federation.simulator import FederatedEnvironment
from .workload import Assignment


@dataclass
class MCMCResult:
    """Outcome of a balancing run."""

    assignment: Assignment
    objective_history: List[int] = field(default_factory=list)
    accepted_transitions: int = 0
    iterations: int = 0

    @property
    def initial_objective(self) -> int:
        return self.objective_history[0] if self.objective_history else 0

    @property
    def final_objective(self) -> int:
        return self.objective_history[-1] if self.objective_history else 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted_transitions / self.iterations if self.iterations else 0.0


def find_max_workload_device(
    environment: FederatedEnvironment,
    assignment: Assignment,
    protocol: Optional[WorkloadComparisonProtocol] = None,
    rng: Optional[np.random.Generator] = None,
    accountant: Optional[TranscriptAccountant] = None,
    charge_ledger: bool = True,
    per_device_ledger: bool = False,
) -> int:
    """Alg. 3: return the id of the device with the maximum workload.

    When ``protocol`` is provided, all comparisons run through the secure
    comparator; otherwise they run in the clear and their cost is charged
    analytically to ``accountant`` (when given).  ``per_device_ledger``
    records one ledger message per candidate announcement (exact transcript,
    used by small examples/tests); the default aggregates the announcements
    into a single coordination message so thousands of MCMC iterations stay
    cheap to log.
    """
    rng = rng if rng is not None else environment.rng
    workloads = assignment.workloads()

    # Part 1 (device operation 1): each device compares its workload with its
    # ego-network neighbours and announces candidacy to the server.
    candidates: List[int] = []
    total_neighbor_comparisons = 0
    if protocol is None and not per_device_ledger:
        # Vectorised evaluation of exactly the same comparisons.
        workload_array = np.zeros(environment.num_devices, dtype=np.int64)
        for vertex, value in workloads.items():
            workload_array[vertex] = value
        sources, destinations = environment.directed_edges()
        neighbor_max = np.zeros(environment.num_devices, dtype=np.int64)
        if sources.size:
            np.maximum.at(neighbor_max, sources, workload_array[destinations])
        total_neighbor_comparisons = int(sources.size)
        candidates = np.where(workload_array >= neighbor_max)[0].tolist()
        environment.server._candidates.extend(int(c) for c in candidates)
        environment.ledger.send(
            sender=SERVER_ID,
            recipient=SERVER_ID,
            kind=MessageKind.SERVER_COORDINATION,
            size_bytes=environment.num_devices,
            description="alg3-candidate-announcements",
        )
    else:
        for device_id in environment.device_ids():
            device = environment.devices[device_id]
            neighbor_workloads = [workloads[int(v)] for v in device.ego.neighbors]
            total_neighbor_comparisons += len(neighbor_workloads)
            if protocol is not None:
                is_candidate = protocol.is_local_maximum(workloads[device_id], neighbor_workloads)
            else:
                is_candidate = all(workloads[device_id] >= other for other in neighbor_workloads)
            environment.server.receive_candidate(device_id, is_candidate)
            if is_candidate:
                candidates.append(device_id)

    # Part 2 (device operation 2): candidates compare among themselves; the
    # winners (possibly several on ties) report to the server which picks one.
    if not candidates:
        # Degenerate case (no edges): every device has workload 0.
        candidates = [environment.device_ids()[0]]
    candidate_workloads = [workloads[c] for c in candidates]
    pairwise_comparisons = len(candidates) * max(len(candidates) - 1, 0)
    maximum_value = max(candidate_workloads)
    winners = [c for c, w in zip(candidates, candidate_workloads) if w == maximum_value]
    if protocol is not None:
        # Run the comparisons so the secure transcript is exact.
        winner_index = protocol.argmax(candidate_workloads)
        if candidate_workloads[winner_index] != maximum_value:
            raise RuntimeError("secure argmax disagrees with plaintext maximum")

    if accountant is not None and protocol is None:
        _charge_analytic_comparisons(
            accountant, total_neighbor_comparisons + pairwise_comparisons
        )
    if charge_ledger:
        _charge_comparison_traffic(environment, total_neighbor_comparisons + pairwise_comparisons)

    chosen = environment.server.select_maximum(winners)
    environment.server.reset_candidates()
    return int(chosen)


def _charge_analytic_comparisons(
    accountant: TranscriptAccountant, count: int, bit_width: int = 24, block_bits: int = 4
) -> None:
    """Add the cost of ``count`` CrypTFlow2 comparisons without running them."""
    num_blocks = (bit_width + block_bits - 1) // block_bits
    ots_per_comparison = 2 * num_blocks
    bits_per_ot = (1 << block_bits) * 1 + 128
    and_gate_bits = 2 * block_bits * max(num_blocks - 1, 0)
    accountant.comparisons += count
    accountant.ot_invocations += count * ots_per_comparison
    accountant.messages += count * (ots_per_comparison + max(num_blocks - 1, 0))
    accountant.bits += count * (ots_per_comparison * bits_per_ot + and_gate_bits)


def _charge_comparison_traffic(environment: FederatedEnvironment, count: int) -> None:
    """Charge aggregated secure-comparison traffic to the environment ledger.

    Alg. 3 traffic belongs to the (one-off) tree-construction phase; we log a
    single aggregated message so the ledger stays small even for thousands of
    iterations.
    """
    environment.ledger.send(
        sender=SERVER_ID,
        recipient=SERVER_ID,
        kind=MessageKind.SECURE_COMPARISON,
        size_bytes=count * 8,
        description=f"alg3-comparisons:{count}",
    )


class MCMCBalancer:
    """Runs Alg. 2 on a federated environment."""

    def __init__(
        self,
        environment: FederatedEnvironment,
        iterations: int,
        accountant: Optional[TranscriptAccountant] = None,
        bit_width: int = 24,
        secure: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        self.environment = environment
        self.iterations = iterations
        self.accountant = accountant if accountant is not None else TranscriptAccountant()
        self.secure = secure
        self.bit_width = bit_width
        self.rng = rng if rng is not None else environment.rng
        self._protocol = (
            WorkloadComparisonProtocol(bit_width=bit_width, accountant=self.accountant, rng=self.rng)
            if secure
            else None
        )

    # ------------------------------------------------------------------ #
    # Alg. 2
    # ------------------------------------------------------------------ #
    def run(self, initial: Assignment) -> MCMCResult:
        """Execute the MCMC iterations starting from ``initial``."""
        current = initial.copy()
        history = [current.objective()]
        accepted = 0

        for iteration in range(self.iterations):
            # Line 2: device with the largest workload under X_t.
            heaviest = find_max_workload_device(
                self.environment,
                current,
                protocol=self._protocol,
                rng=self.rng,
                accountant=self.accountant,
            )
            source_neighbors = sorted(current.selected.get(heaviest, set()))
            if not source_neighbors:
                history.append(current.objective())
                continue

            # Lines 3-4: sample the step size k and the k neighbours to move.
            step_limit = max(1, int(round(math.log(len(source_neighbors)))) or 1)
            step = int(self.rng.integers(1, step_limit + 1))
            step = min(step, len(source_neighbors))
            chosen = self.rng.choice(source_neighbors, size=step, replace=False)
            targets = [int(v) for v in np.atleast_1d(chosen)]

            # Line 5: form X'_t with the transition of Eq. 17.
            proposal = current.transfer(heaviest, targets)
            for target in targets:
                self.environment.exchange(
                    heaviest, target, MessageKind.SERVER_COORDINATION, 8,
                    description="mcmc-transition-proposal",
                )

            # Line 6: device with the largest workload under X'_t.
            heaviest_after = find_max_workload_device(
                self.environment,
                proposal,
                protocol=self._protocol,
                rng=self.rng,
                accountant=self.accountant,
            )

            # Line 7: f(X_t) - f(X'_t), computed between the two maximal devices.
            objective_before = current.objective()
            objective_after = proposal.objective()
            if self._protocol is not None:
                difference = self._protocol.objective_difference(objective_before, objective_after)
            else:
                difference = objective_before - objective_after
                _charge_analytic_comparisons(self.accountant, 1, bit_width=self.bit_width)
            self.environment.exchange(
                heaviest, heaviest_after, MessageKind.SECURE_COMPARISON, self.bit_width // 8 or 1,
                description="mcmc-objective-difference",
            )

            # Line 8: Metropolis-Hastings acceptance (Eq. 18).
            acceptance_probability = min(1.0, math.exp(min(difference, 50)))
            if self.rng.random() < acceptance_probability:
                current = proposal
                accepted += 1
                # Line 9: the source device informs the moved neighbours.
                for target in targets:
                    self.environment.exchange(
                        heaviest, target, MessageKind.SERVER_COORDINATION, 8,
                        description="mcmc-accept-notification",
                    )
            history.append(current.objective())
            self.environment.next_round()

        self.environment.apply_assignment(current.as_lists())
        return MCMCResult(
            assignment=current,
            objective_history=history,
            accepted_transitions=accepted,
            iterations=self.iterations,
        )
