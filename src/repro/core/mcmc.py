"""MCMC workload balancing (paper Alg. 2 and Alg. 3).

The iterative balancer repeatedly

1. finds the device ``u`` with the largest workload (Alg. 3),
2. lets ``u`` move ``k`` of its selected neighbours to the other endpoint of
   the corresponding edges (the transition of Eq. 16/17, with
   ``k ~ Uniform{1, ..., round(ln |N_u|)}``),
3. finds the most-loaded device of the transited state,
4. accepts or rejects the transition with the Metropolis-Hastings rule of
   Eq. 18: ``P[accept] = min(1, e^{f(X_t) - f(X'_t)})``.

Two execution modes are provided:

* ``secure=True`` runs every workload comparison of Alg. 3 through the
  simulated CrypTFlow2 protocol — as a *batched* vectorised-OT simulation on
  the incremental kernel (the ``"auto"`` resolution over contiguous device
  ids, see :meth:`_IncrementalBalancingKernel.find_max_workload_device_secure`)
  or as the original per-comparison message-level loop on the reference
  kernel; the two are bit-for-bit equivalent in every recorded observable
  (pinned by ``tests/test_secure_batched.py``);
* ``secure=False`` (default) evaluates the comparisons in the clear but
  charges the *same* analytic communication cost to the transcript
  accountant and ledger — the resulting assignments are identical, and large
  benchmark graphs stay fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..crypto.oblivious_transfer import TranscriptAccountant
from ..crypto.secure_compare import comparison_cost
from ..crypto.zero_knowledge import WorkloadComparisonProtocol
from ..federation.events import SERVER_ID, MessageKind
from ..federation.simulator import FederatedEnvironment
from .workload import Assignment

#: Kernel selection values accepted by :class:`MCMCBalancer`.
KERNELS = ("auto", "incremental", "reference")


@dataclass
class MCMCResult:
    """Outcome of a balancing run."""

    assignment: Assignment
    objective_history: List[int] = field(default_factory=list)
    accepted_transitions: int = 0
    iterations: int = 0

    @property
    def initial_objective(self) -> int:
        return self.objective_history[0] if self.objective_history else 0

    @property
    def final_objective(self) -> int:
        return self.objective_history[-1] if self.objective_history else 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted_transitions / self.iterations if self.iterations else 0.0


def find_max_workload_device(
    environment: FederatedEnvironment,
    assignment: Assignment,
    protocol: Optional[WorkloadComparisonProtocol] = None,
    rng: Optional[np.random.Generator] = None,
    accountant: Optional[TranscriptAccountant] = None,
    charge_ledger: bool = True,
    per_device_ledger: bool = False,
) -> int:
    """Alg. 3: return the id of the device with the maximum workload.

    When ``protocol`` is provided, all comparisons run through the secure
    comparator; otherwise they run in the clear and their cost is charged
    analytically to ``accountant`` (when given).  ``per_device_ledger``
    records one ledger message per candidate announcement (exact transcript,
    used by small examples/tests); the default aggregates the announcements
    into a single coordination message so thousands of MCMC iterations stay
    cheap to log.
    """
    rng = rng if rng is not None else environment.rng
    workloads = assignment.workloads()

    # Part 1 (device operation 1): each device compares its workload with its
    # ego-network neighbours and announces candidacy to the server.
    candidates: List[int] = []
    total_neighbor_comparisons = 0
    if protocol is None and not per_device_ledger:
        # Vectorised evaluation of exactly the same comparisons.
        workload_array = np.zeros(environment.num_devices, dtype=np.int64)
        for vertex, value in workloads.items():
            workload_array[vertex] = value
        sources, destinations = environment.directed_edges()
        neighbor_max = np.zeros(environment.num_devices, dtype=np.int64)
        if sources.size:
            np.maximum.at(neighbor_max, sources, workload_array[destinations])
        total_neighbor_comparisons = int(sources.size)
        candidates = np.where(workload_array >= neighbor_max)[0].tolist()
        environment.ledger.send(
            sender=SERVER_ID,
            recipient=SERVER_ID,
            kind=MessageKind.SERVER_COORDINATION,
            size_bytes=environment.num_devices,
            description="alg3-candidate-announcements",
        )
    else:
        for device_id in environment.device_ids():
            device = environment.devices[device_id]
            neighbor_workloads = [workloads[int(v)] for v in device.ego.neighbors]
            total_neighbor_comparisons += len(neighbor_workloads)
            if protocol is not None:
                is_candidate = protocol.is_local_maximum(workloads[device_id], neighbor_workloads)
            else:
                is_candidate = all(workloads[device_id] >= other for other in neighbor_workloads)
            environment.server.receive_candidate(device_id, is_candidate)
            if is_candidate:
                candidates.append(device_id)

    # Part 2 (device operation 2): candidates compare among themselves; the
    # winners (possibly several on ties) report to the server which picks one.
    if not candidates:
        # Degenerate case (no edges): every device has workload 0.
        candidates = [environment.device_ids()[0]]
    candidate_workloads = [workloads[c] for c in candidates]
    pairwise_comparisons = len(candidates) * max(len(candidates) - 1, 0)
    maximum_value = max(candidate_workloads)
    winners = [c for c, w in zip(candidates, candidate_workloads) if w == maximum_value]
    if protocol is not None:
        # Run the comparisons so the secure transcript is exact.
        winner_index = protocol.argmax(candidate_workloads)
        if candidate_workloads[winner_index] != maximum_value:
            raise RuntimeError("secure argmax disagrees with plaintext maximum")

    if accountant is not None and protocol is None:
        _charge_analytic_comparisons(
            accountant, total_neighbor_comparisons + pairwise_comparisons
        )
    if charge_ledger:
        _charge_comparison_traffic(environment, total_neighbor_comparisons + pairwise_comparisons)

    if protocol is None and not per_device_ledger:
        # Aggregated path: the winner announcements collapse into a single
        # coordination message (same bytes, one ledger entry) so thousands of
        # MCMC iterations stay cheap to log — mirroring the candidate
        # announcements above.
        environment.ledger.send(
            sender=SERVER_ID,
            recipient=SERVER_ID,
            kind=MessageKind.SERVER_COORDINATION,
            size_bytes=len(winners),
            description="alg3-maximum-announcements",
        )
        chosen = environment.server.pick_maximum(winners)
    else:
        chosen = environment.server.select_maximum(winners)
    environment.server.reset_candidates()
    return int(chosen)


def _charge_analytic_comparisons(
    accountant: TranscriptAccountant, count: int, bit_width: int = 24, block_bits: int = 4
) -> None:
    """Add the cost of ``count`` CrypTFlow2 comparisons without running them.

    The per-comparison constants come from the shared
    :func:`repro.crypto.secure_compare.comparison_cost` table (the same source
    the batched greedy kernel charges from), so the analytic and executed
    accountings cannot drift.  Unlike the executed protocols this path leaves
    the capped transcript log untouched (it always has).
    """
    cost = comparison_cost(bit_width, block_bits=block_bits)
    accountant.comparisons += count
    accountant.ot_invocations += count * cost.ot_invocations
    accountant.messages += count * cost.messages
    accountant.bits += count * cost.bits
    obs.add_counter("crypto.comparisons", count)
    obs.add_counter("crypto.ot_invocations", count * cost.ot_invocations)
    obs.add_counter("crypto.messages", count * cost.messages)
    obs.add_counter("crypto.bits", count * cost.bits)


def _charge_comparison_traffic(environment: FederatedEnvironment, count: int) -> None:
    """Charge aggregated secure-comparison traffic to the environment ledger.

    Alg. 3 traffic belongs to the (one-off) tree-construction phase; we log a
    single aggregated message so the ledger stays small even for thousands of
    iterations.
    """
    environment.ledger.send(
        sender=SERVER_ID,
        recipient=SERVER_ID,
        kind=MessageKind.SECURE_COMPARISON,
        size_bytes=count * 8,
        description="alg3-comparisons",
    )


class _IncrementalBalancingKernel:
    """Array-backed incremental state for the balancing loop (clear + secure).

    Holds the flat workload vector, a prebuilt CSR adjacency, and two derived
    arrays maintained by deltas across transitions:

    * ``neighbor_max[w]`` — the largest workload among ``w``'s ego-network
      neighbours (the quantity every device compares itself against in Alg. 3
      device operation 1);
    * ``candidate[w]`` — whether ``w`` currently announces candidacy
      (``workload[w] >= neighbor_max[w]``).

    A k-step transition changes the workloads of at most ``k + 1`` vertices,
    so :meth:`apply` touches only those vertices and their neighbourhoods —
    O(degree of the moved vertices) instead of the O(devices + edges) full
    rescan — and journals every overwritten entry so a rejected proposal is
    reverted exactly.  The candidate set, the winner set, the transcript
    charges and the server tie-breaks are identical to the from-scratch
    evaluation, which is what the seeded equivalence tests pin.
    """

    def __init__(self, environment: FederatedEnvironment, assignment: Assignment) -> None:
        self.environment = environment
        self.assignment = assignment
        n = environment.num_devices
        self.num_devices = n
        self.workload = assignment.workload_vector(n)
        indptr, indices = environment.adjacency_csr()
        # Adjacency as plain python lists: the delta updates below touch a
        # few dozen entries per transition, where scalar list indexing beats
        # numpy fancy-indexing overhead by a wide margin.
        self._neighbors = [
            indices[indptr[v]:indptr[v + 1]].tolist() for v in range(n)
        ]
        # Columnar CSR view used by the batched *secure* Alg. 3 path: per
        # directed neighbour relation, the owning device, and its 0-based
        # position within the device's ego-ordered neighbour list (the order
        # the reference loop's early-terminating comparisons follow).
        self._csr_indices = indices
        self._csr_degrees = np.diff(indptr)
        self._csr_sources = np.repeat(np.arange(n, dtype=np.int64), self._csr_degrees)
        self._edge_offsets = (
            np.arange(indices.shape[0], dtype=np.int64)
            - np.repeat(indptr[:-1], self._csr_degrees)
        )
        # Alg. 3 device operation 1 always evaluates one comparison per
        # directed neighbour relation, whatever the workloads are.
        self.neighbor_comparisons = int(indices.shape[0])
        neighbor_max = np.zeros(n, dtype=np.int64)
        neighbor_max_count = np.zeros(n, dtype=np.int64)
        if indices.shape[0]:
            sources, destinations = environment.directed_edges()
            np.maximum.at(neighbor_max, sources, self.workload[destinations])
            attains = self.workload[destinations] == neighbor_max[sources]
            neighbor_max_count = np.bincount(
                sources[attains], minlength=n
            ).astype(np.int64)
        # Maintained per-device maximum over the neighbours' workloads, plus
        # its multiplicity: how many neighbours attain it.  A lowered
        # workload then only forces a neighbourhood rescan where the moving
        # device was the *unique* maximum — with the heavy workload ties of
        # a balanced state, most decrements reduce the count and touch
        # nothing else.
        self.neighbor_max = neighbor_max.tolist()
        self.neighbor_max_count = neighbor_max_count.tolist()
        self.candidate = self.workload >= neighbor_max
        self.objective = int(self.workload.max()) if n else 0
        self._fallback_device = environment.device_ids()[0] if n else 0
        self._pending: Optional[tuple] = None
        # Columnar transcript buffers: the balancing loop appends plain ints
        # here and flushes one BulkMessageEvent per description at the end of
        # the run — identical traffic to the eager reference loop (compare
        # with CommunicationLedger.message_records) without allocating one
        # message object per protocol step.
        self._candidate_rounds: List[int] = []
        self._comparison_rounds: List[int] = []
        self._comparison_counts: List[int] = []
        self._winner_rounds: List[int] = []
        self._winner_counts: List[int] = []
        # Secure-mode buffers (the secure reference path logs per-device
        # candidate announcements and per-winner maximum announcements, not
        # the aggregated clear-mode coordination messages).
        self._secure_announce_rounds: List[int] = []
        self._secure_comparison_rounds: List[int] = []
        self._secure_comparison_counts: List[int] = []
        self._secure_winner_ids: List[int] = []
        self._secure_winner_rounds: List[int] = []
        # Version-keyed memo of the Alg. 3 evaluation: apply() moves to a
        # fresh version, revert() returns to the previous one, so the first
        # call of an iteration always sees a state some earlier call already
        # evaluated — the candidate scan is skipped while the per-call RNG
        # consumption and transcript charges still happen.
        self._version = 0
        self._next_version = 0
        self._winners_memo: dict = {}

    @staticmethod
    def supported(environment: FederatedEnvironment) -> bool:
        """Contiguous ``0..n-1`` device ids (node-level partition layout)."""
        return environment.has_contiguous_ids()

    # ------------------------------------------------------------------ #
    # Alg. 3 (incremental candidate/argmax evaluation)
    # ------------------------------------------------------------------ #
    def find_max_workload_device(
        self, accountant: Optional[TranscriptAccountant], round_index: int
    ) -> int:
        """Alg. 3 over the maintained candidate set; O(candidates), not O(edges)."""
        self._candidate_rounds.append(round_index)
        memo = self._winners_memo.get(self._version)
        if memo is not None:
            winners, num_candidates = memo
        else:
            candidate_indices = np.flatnonzero(self.candidate)
            num_candidates = int(candidate_indices.shape[0])
            if num_candidates:
                candidate_workloads = self.workload[candidate_indices]
                winners = candidate_indices[
                    candidate_workloads == candidate_workloads.max()
                ].tolist()
            else:
                num_candidates = 1
                winners = [self._fallback_device]
            if len(self._winners_memo) > 8:
                self._winners_memo.clear()
            self._winners_memo[self._version] = (winners, num_candidates)
        pairwise_comparisons = num_candidates * (num_candidates - 1)
        if accountant is not None:
            _charge_analytic_comparisons(
                accountant, self.neighbor_comparisons + pairwise_comparisons
            )
        self._comparison_rounds.append(round_index)
        self._comparison_counts.append(self.neighbor_comparisons + pairwise_comparisons)
        self._winner_rounds.append(round_index)
        self._winner_counts.append(len(winners))
        return self.environment.server.pick_maximum(winners)

    def find_max_workload_device_secure(
        self, protocol: WorkloadComparisonProtocol, round_index: int
    ) -> int:
        """Alg. 3 under the batched secure protocol (vectorised part 1).

        Executes *exactly* the comparisons the secure reference loop would:
        device ``u`` compares its workload against its neighbours in ego
        order and stops at the first strictly greater one
        (:meth:`WorkloadComparisonProtocol.is_local_maximum`'s early
        termination), so the number of executed protocol runs is
        value-dependent.  The early-terminated prefix is gathered with one
        boolean mask and run through the vectorised millionaires' protocol
        (:meth:`WorkloadComparisonProtocol.compare_workloads_many`); part 2
        then runs the candidate argmax through the scalar protocol — the
        candidate set is small — giving accountant counters *and* capped log
        entry-for-entry identical to the per-device loop.

        The maintained candidate flags are cross-checked against the
        protocol outcomes (mirroring the reference loop's "secure argmax
        disagrees" guard), and the per-device candidate announcements /
        per-winner maximum announcements are buffered for a columnar flush.
        """
        workload = self.workload
        n = self.num_devices
        if self._csr_indices.shape[0]:
            own = workload[self._csr_sources]
            other = workload[self._csr_indices]
            # First strictly-greater neighbour position per device (the
            # comparison at which is_local_maximum stops), or the device's
            # degree when no neighbour exceeds it (candidate).
            sentinel = np.iinfo(np.int64).max
            exceeds = np.flatnonzero(other > own)
            first_offset = np.full(n, sentinel, dtype=np.int64)
            np.minimum.at(first_offset, self._csr_sources[exceeds], self._edge_offsets[exceeds])
            candidate = first_offset == sentinel
            executed = np.where(candidate, self._csr_degrees, first_offset + 1)
            prefix = self._edge_offsets < executed[self._csr_sources]
            batch = protocol.compare_workloads_many(own[prefix], other[prefix])
            # Every executed comparison except a non-candidate's last one
            # returns own >= other; re-derive candidacy from the protocol
            # outcomes and check it against the maintained flags.
            losses = np.zeros(n, dtype=np.int64)
            np.add.at(losses, self._csr_sources[prefix], (~batch.left_ge_right).astype(np.int64))
            if not np.array_equal(losses == 0, candidate) or not np.array_equal(
                candidate, self.candidate
            ):
                raise RuntimeError(
                    "secure batched Alg. 3 disagrees with the maintained candidate set"
                )
        else:
            # No neighbour relations: every device is vacuously a local
            # maximum and no comparison is executed (matching the loop).
            candidate = np.ones(n, dtype=bool) if n else np.zeros(0, dtype=bool)

        candidate_ids = np.flatnonzero(candidate)
        if candidate_ids.size:
            candidates = candidate_ids.tolist()
        else:
            candidates = [self._fallback_device]
        candidate_workloads = [int(workload[c]) for c in candidates]
        pairwise_comparisons = len(candidates) * (len(candidates) - 1)
        maximum_value = max(candidate_workloads)
        winners = [c for c, w in zip(candidates, candidate_workloads) if w == maximum_value]
        # Part 2 runs through the scalar protocol, exactly as the reference
        # path does (the candidate set is tiny next to the edge set).
        winner_index = protocol.argmax(candidate_workloads)
        if candidate_workloads[winner_index] != maximum_value:
            raise RuntimeError("secure argmax disagrees with plaintext maximum")

        self._secure_announce_rounds.append(round_index)
        self._secure_comparison_rounds.append(round_index)
        self._secure_comparison_counts.append(
            self.neighbor_comparisons + pairwise_comparisons
        )
        self._secure_winner_ids.extend(winners)
        self._secure_winner_rounds.extend([round_index] * len(winners))
        return self.environment.server.pick_maximum(winners)

    def flush_transcript(self) -> None:
        """Emit the buffered Alg. 3 traffic as columnar ledger events."""
        ledger = self.environment.ledger
        if self._candidate_rounds:
            calls = len(self._candidate_rounds)
            server = np.full(calls, SERVER_ID, dtype=np.int64)
            ledger.send_many(
                server, server, MessageKind.SERVER_COORDINATION,
                np.full(calls, self.num_devices, dtype=np.int64),
                self._candidate_rounds,
                description="alg3-candidate-announcements",
            )
            ledger.send_many(
                server, server, MessageKind.SECURE_COMPARISON,
                np.asarray(self._comparison_counts, dtype=np.int64) * 8,
                self._comparison_rounds,
                description="alg3-comparisons",
            )
            ledger.send_many(
                server, server, MessageKind.SERVER_COORDINATION,
                self._winner_counts,
                self._winner_rounds,
                description="alg3-maximum-announcements",
            )
        if self._secure_announce_rounds:
            calls = len(self._secure_announce_rounds)
            device_ids = np.arange(self.num_devices, dtype=np.int64)
            announce_senders = np.tile(device_ids, calls)
            announce_rounds = np.repeat(
                np.asarray(self._secure_announce_rounds, dtype=np.int64),
                self.num_devices,
            )
            ledger.send_many(
                announce_senders,
                np.full(announce_senders.shape[0], SERVER_ID, dtype=np.int64),
                MessageKind.SERVER_COORDINATION,
                np.ones(announce_senders.shape[0], dtype=np.int64),
                announce_rounds,
                description="candidate-announcement",
            )
            server = np.full(calls, SERVER_ID, dtype=np.int64)
            ledger.send_many(
                server, server, MessageKind.SECURE_COMPARISON,
                np.asarray(self._secure_comparison_counts, dtype=np.int64) * 8,
                self._secure_comparison_rounds,
                description="alg3-comparisons",
            )
        if self._secure_winner_ids:
            winner_senders = np.asarray(self._secure_winner_ids, dtype=np.int64)
            ledger.send_many(
                winner_senders,
                np.full(winner_senders.shape[0], SERVER_ID, dtype=np.int64),
                MessageKind.SERVER_COORDINATION,
                np.ones(winner_senders.shape[0], dtype=np.int64),
                self._secure_winner_rounds,
                description="maximum-announcement",
            )
        self._candidate_rounds = []
        self._comparison_rounds = []
        self._comparison_counts = []
        self._winner_rounds = []
        self._winner_counts = []
        self._secure_announce_rounds = []
        self._secure_comparison_rounds = []
        self._secure_comparison_counts = []
        self._secure_winner_ids = []
        self._secure_winner_rounds = []

    # ------------------------------------------------------------------ #
    # Transitions (Eq. 17) as journaled delta updates
    # ------------------------------------------------------------------ #
    def _update_maxima(self, increased: List[tuple], decreased: List[tuple]) -> List[int]:
        """Propagate workload deltas into ``neighbor_max`` / its multiplicity.

        ``increased`` holds ``(vertex, new_value)`` pairs, ``decreased`` holds
        ``(vertex, old_value)`` pairs; the workload vector itself must already
        carry the new values.  Decrements run in two phases (count first, then
        rescan the neighbourhoods whose count reached zero) so that several
        simultaneous decrements around one vertex each retire exactly one
        attainment of the *old* maximum.  Returns the vertices whose maximum
        (not merely its multiplicity) changed.
        """
        workload = self.workload
        neighbors = self._neighbors
        neighbor_max = self.neighbor_max
        neighbor_max_count = self.neighbor_max_count
        touched: List[int] = []

        # Raised workloads can only raise (or join) the maxima around them.
        for vertex, new_value in increased:
            for w in neighbors[vertex]:
                maximum = neighbor_max[w]
                if maximum < new_value:
                    neighbor_max[w] = new_value
                    neighbor_max_count[w] = 1
                    touched.append(w)
                elif maximum == new_value:
                    neighbor_max_count[w] += 1

        # A lowered workload retires one attainment wherever the vertex was
        # at the (old) maximum; only neighbourhoods left with no attainment
        # are rescanned — with the heavy workload ties of a balanced state,
        # most decrements stop at the count.  With a single lowered vertex
        # (every apply) the rescan can run inline; several simultaneous
        # decrements (revert of a k-step move) must retire all attainments
        # of the old maxima before any rescan, hence the two-phase branch.
        if len(decreased) == 1:
            vertex, old_value = decreased[0]
            rescan = []
            for w in neighbors[vertex]:
                if neighbor_max[w] == old_value:
                    count = neighbor_max_count[w]
                    if count > 1:
                        neighbor_max_count[w] = count - 1
                    else:
                        rescan.append(w)
        else:
            marked: List[int] = []
            for vertex, old_value in decreased:
                for w in neighbors[vertex]:
                    if neighbor_max[w] == old_value:
                        neighbor_max_count[w] -= 1
                        marked.append(w)
            rescan = [w for w in marked if neighbor_max_count[w] == 0]
        for w in rescan:
            maximum = 0
            attained = 0
            for v in neighbors[w]:
                value = workload[v]
                if value > maximum:
                    maximum, attained = value, 1
                elif value == maximum:
                    attained += 1
            neighbor_max[w] = int(maximum)
            neighbor_max_count[w] = attained
            touched.append(w)
        return touched

    def _refresh_candidates(self, vertices: List[int]) -> None:
        """Re-evaluate candidacy where a workload or a maximum changed."""
        workload = self.workload
        neighbor_max = self.neighbor_max
        candidate = self.candidate
        for w in vertices:
            candidate[w] = workload[w] >= neighbor_max[w]

    def apply(self, source: int, targets: List[int]) -> None:
        """Apply the transition in place; O(degree of the moved vertices)."""
        if self._pending is not None:
            raise RuntimeError("a proposal is already pending")
        source = int(source)
        old_source_workload = int(self.workload[source])
        record = self.assignment.apply_transfer(source, targets)
        increased = [
            (target, int(self.workload[target])) for target, added in record if added
        ]
        touched = self._update_maxima(increased, [(source, old_source_workload)])
        self._refresh_candidates(
            [source] + [target for target, _ in increased] + touched
        )
        self._pending = (source, record, self._version)
        self._next_version += 1
        self._version = self._next_version

    def commit(self, objective_after: int) -> None:
        """Accept the pending proposal (the deltas simply stay applied)."""
        self._pending = None
        self.objective = int(objective_after)

    def revert(self) -> None:
        """Reject the pending proposal by applying the inverse delta."""
        if self._pending is None:
            raise RuntimeError("no pending proposal to revert")
        source, record, previous_version = self._pending
        # Pre-undo values of the moved neighbours are the "old" side of the
        # inverse delta; the source's restored workload is its "new" side.
        decreased = [
            (target, int(self.workload[target])) for target, added in record if added
        ]
        self.assignment.undo_transfer(source, record)
        touched = self._update_maxima(
            [(source, int(self.workload[source]))], decreased
        )
        self._refresh_candidates(
            [source] + [target for target, _ in decreased] + touched
        )
        self._version = previous_version
        self._pending = None


class MCMCBalancer:
    """Runs Alg. 2 on a federated environment.

    ``kernel`` selects the inner-loop implementation: ``"incremental"`` (the
    array-backed delta kernel), ``"reference"`` (the from-scratch loop the
    equivalence tests pin against) or ``"auto"`` (incremental whenever it
    applies: contiguous device ids).  In secure mode the incremental kernel
    runs Alg. 3 through the batched vectorised-OT protocol simulation,
    charging transcripts identical to the early-terminating per-device loop.
    """

    def __init__(
        self,
        environment: FederatedEnvironment,
        iterations: int,
        accountant: Optional[TranscriptAccountant] = None,
        bit_width: int = 24,
        secure: bool = False,
        rng: Optional[np.random.Generator] = None,
        kernel: str = "auto",
    ) -> None:
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        self.environment = environment
        self.iterations = iterations
        self.accountant = accountant if accountant is not None else TranscriptAccountant()
        self.secure = secure
        self.bit_width = bit_width
        self.kernel = kernel
        self.rng = rng if rng is not None else environment.rng
        self._protocol = (
            WorkloadComparisonProtocol(bit_width=bit_width, accountant=self.accountant, rng=self.rng)
            if secure
            else None
        )

    # ------------------------------------------------------------------ #
    # Alg. 2
    # ------------------------------------------------------------------ #
    def run(self, initial: Assignment) -> MCMCResult:
        """Execute the MCMC iterations starting from ``initial``."""
        incremental_ok = _IncrementalBalancingKernel.supported(self.environment)
        if self.kernel == "incremental" and not incremental_ok:
            raise ValueError("incremental kernel requires contiguous device ids")
        if incremental_ok and self.kernel in ("auto", "incremental"):
            return self._run_incremental(initial)
        return self._run_reference(initial)

    def _run_incremental(self, initial: Assignment) -> MCMCResult:
        """Alg. 2 over the delta kernel; bit-identical to the reference loop."""
        current = initial.copy()
        kernel = _IncrementalBalancingKernel(self.environment, current)
        history = [kernel.objective]
        accepted = 0
        ledger = self.environment.ledger
        rng = self.rng
        round_index = ledger.current_round
        # Columnar buffers for the device-to-device traffic of the loop; the
        # same messages environment.exchange would log, flushed as bulk
        # events after the last iteration.
        proposal_senders: List[int] = []
        proposal_recipients: List[int] = []
        proposal_rounds: List[int] = []
        objective_senders: List[int] = []
        objective_recipients: List[int] = []
        objective_rounds: List[int] = []
        accept_senders: List[int] = []
        accept_recipients: List[int] = []
        accept_rounds: List[int] = []

        for iteration in range(self.iterations):
            # Line 2: device with the largest workload under X_t.
            if self._protocol is not None:
                heaviest = kernel.find_max_workload_device_secure(
                    self._protocol, round_index
                )
            else:
                heaviest = kernel.find_max_workload_device(self.accountant, round_index)
            source_neighbors = sorted(current.selected.get(heaviest, set()))
            if not source_neighbors:
                # The reference loop `continue`s past its next_round() too,
                # so the round counter must not advance on this branch.
                history.append(kernel.objective)
                continue

            # Lines 3-4: sample the step size k and the k neighbours to move.
            step_limit = max(1, int(round(math.log(len(source_neighbors)))) or 1)
            step = int(rng.integers(1, step_limit + 1))
            step = min(step, len(source_neighbors))
            chosen = rng.choice(source_neighbors, size=step, replace=False)
            targets = [int(v) for v in chosen]

            # Line 5: form X'_t in place (O(k) delta, revertible).
            objective_before = kernel.objective
            kernel.apply(heaviest, targets)
            for target in targets:
                proposal_senders.append(heaviest)
                proposal_recipients.append(target)
                proposal_rounds.append(round_index)

            # Line 6: device with the largest workload under X'_t.
            if self._protocol is not None:
                heaviest_after = kernel.find_max_workload_device_secure(
                    self._protocol, round_index
                )
            else:
                heaviest_after = kernel.find_max_workload_device(
                    self.accountant, round_index
                )

            # Line 7: f(X_t) - f(X'_t); the winner of Alg. 3 attains the
            # maximum, so both objectives are single workload lookups.
            objective_after = int(kernel.workload[heaviest_after])
            if self._protocol is not None:
                difference = self._protocol.objective_difference(
                    objective_before, objective_after
                )
            else:
                difference = objective_before - objective_after
                _charge_analytic_comparisons(self.accountant, 1, bit_width=self.bit_width)
            objective_senders.append(heaviest)
            objective_recipients.append(heaviest_after)
            objective_rounds.append(round_index)

            # Line 8: Metropolis-Hastings acceptance (Eq. 18).
            acceptance_probability = min(1.0, math.exp(min(difference, 50)))
            if rng.random() < acceptance_probability:
                kernel.commit(objective_after)
                accepted += 1
                # Line 9: the source device informs the moved neighbours.
                for target in targets:
                    accept_senders.append(heaviest)
                    accept_recipients.append(target)
                    accept_rounds.append(round_index)
            else:
                kernel.revert()
            history.append(kernel.objective)
            round_index += 1

        ledger.current_round = round_index
        kernel.flush_transcript()
        if proposal_senders:
            ledger.send_many(
                proposal_senders, proposal_recipients, MessageKind.SERVER_COORDINATION,
                np.full(len(proposal_senders), 8, dtype=np.int64), proposal_rounds,
                description="mcmc-transition-proposal",
            )
        if objective_senders:
            ledger.send_many(
                objective_senders, objective_recipients, MessageKind.SECURE_COMPARISON,
                np.full(
                    len(objective_senders), self.bit_width // 8 or 1, dtype=np.int64
                ),
                objective_rounds,
                description="mcmc-objective-difference",
            )
        if accept_senders:
            ledger.send_many(
                accept_senders, accept_recipients, MessageKind.SERVER_COORDINATION,
                np.full(len(accept_senders), 8, dtype=np.int64), accept_rounds,
                description="mcmc-accept-notification",
            )
        self.environment.apply_assignment(current.as_lists())
        return MCMCResult(
            assignment=current,
            objective_history=history,
            accepted_transitions=accepted,
            iterations=self.iterations,
        )

    def _run_reference(self, initial: Assignment) -> MCMCResult:
        """The from-scratch loop (secure mode and the equivalence baseline)."""
        current = initial.copy()
        history = [current.objective()]
        accepted = 0

        for iteration in range(self.iterations):
            # Line 2: device with the largest workload under X_t.
            heaviest = find_max_workload_device(
                self.environment,
                current,
                protocol=self._protocol,
                rng=self.rng,
                accountant=self.accountant,
            )
            source_neighbors = sorted(current.selected.get(heaviest, set()))
            if not source_neighbors:
                history.append(current.objective())
                continue

            # Lines 3-4: sample the step size k and the k neighbours to move.
            step_limit = max(1, int(round(math.log(len(source_neighbors)))) or 1)
            step = int(self.rng.integers(1, step_limit + 1))
            step = min(step, len(source_neighbors))
            chosen = self.rng.choice(source_neighbors, size=step, replace=False)
            targets = [int(v) for v in np.atleast_1d(chosen)]

            # Line 5: form X'_t with the transition of Eq. 17.
            proposal = current.transfer(heaviest, targets)
            for target in targets:
                self.environment.exchange(
                    heaviest, target, MessageKind.SERVER_COORDINATION, 8,
                    description="mcmc-transition-proposal",
                )

            # Line 6: device with the largest workload under X'_t.
            heaviest_after = find_max_workload_device(
                self.environment,
                proposal,
                protocol=self._protocol,
                rng=self.rng,
                accountant=self.accountant,
            )

            # Line 7: f(X_t) - f(X'_t), computed between the two maximal devices.
            objective_before = current.objective()
            objective_after = proposal.objective()
            if self._protocol is not None:
                difference = self._protocol.objective_difference(objective_before, objective_after)
            else:
                difference = objective_before - objective_after
                _charge_analytic_comparisons(self.accountant, 1, bit_width=self.bit_width)
            self.environment.exchange(
                heaviest, heaviest_after, MessageKind.SECURE_COMPARISON, self.bit_width // 8 or 1,
                description="mcmc-objective-difference",
            )

            # Line 8: Metropolis-Hastings acceptance (Eq. 18).
            acceptance_probability = min(1.0, math.exp(min(difference, 50)))
            if self.rng.random() < acceptance_probability:
                current = proposal
                accepted += 1
                # Line 9: the source device informs the moved neighbours.
                for target in targets:
                    self.environment.exchange(
                        heaviest, target, MessageKind.SERVER_COORDINATION, 8,
                        description="mcmc-accept-notification",
                    )
            history.append(current.objective())
            self.environment.next_round()

        self.environment.apply_assignment(current.as_lists())
        return MCMCResult(
            assignment=current,
            objective_history=history,
            accepted_transitions=accepted,
            iterations=self.iterations,
        )


# --------------------------------------------------------------------------- #
# Localized rebalance (tree maintenance)
# --------------------------------------------------------------------------- #
def localized_rebalance(
    assignment: Assignment,
    region: Sequence[int],
    iterations: int,
    rng: np.random.Generator,
    accountant: Optional[TranscriptAccountant] = None,
    bit_width: int = 24,
) -> Dict[str, int]:
    """Alg. 2 restricted to ``region``, in place, via the O(k) deltas.

    The maintenance layer calls this after churn has perturbed a constructed
    tree: instead of re-running the global balancer, only the devices in
    ``region`` (typically the heaviest device and its ego neighbourhood)
    participate.  Each iteration mirrors one step of the incremental loop —
    region-local argmax, ``k ~ Uniform{1, ..., round(ln |targets|)}`` sampled
    targets, Metropolis-Hastings acceptance — but both the argmax and the
    objective are evaluated over ``region`` only, so one iteration costs
    O(|region| + k) regardless of federation size.

    Mutates ``assignment`` through :meth:`Assignment.apply_transfer` /
    :meth:`Assignment.undo_transfer` (never touching the private workload
    vector) and charges the analytic comparison cost to ``accountant``.
    Returns deterministic counters (``accepted`` transitions, neighbour
    ``moves``, ``comparisons`` charged) for the caller's ledger entry.
    """
    region_set = {int(v) for v in region} & set(assignment.selected)
    region_ids = sorted(region_set)
    accepted = 0
    moves = 0
    comparisons = 0
    for _ in range(iterations):
        if not region_ids:
            break
        # Region-local Alg. 3: argmax workload, smallest id on ties.
        heaviest, objective_before = region_ids[0], -1
        for vertex in region_ids:
            workload = len(assignment.selected.get(vertex, ()))
            if workload > objective_before:
                heaviest, objective_before = vertex, workload
        comparisons += max(len(region_ids) - 1, 0)
        # Only region members may receive load: with targets outside the
        # region the *local* objective could "improve" by piling work onto
        # devices this rebalance never re-examines.
        targets_pool = sorted(
            v for v in assignment.selected.get(heaviest, ()) if v in region_set
        )
        if not targets_pool:
            break  # the whole region is workload-free; nothing to move
        step_limit = max(1, int(round(math.log(len(targets_pool)))) or 1)
        step = min(int(rng.integers(1, step_limit + 1)), len(targets_pool))
        chosen = rng.choice(targets_pool, size=step, replace=False)
        targets = [int(v) for v in np.atleast_1d(chosen)]

        record = assignment.apply_transfer(heaviest, targets)
        objective_after = max(
            len(assignment.selected.get(vertex, ())) for vertex in region_ids
        )
        comparisons += 1  # the objective-difference comparison
        difference = objective_before - objective_after
        if rng.random() < min(1.0, math.exp(min(difference, 50))):
            accepted += 1
            moves += len(targets)
        else:
            assignment.undo_transfer(heaviest, record)
    if accountant is not None and comparisons:
        _charge_analytic_comparisons(accountant, comparisons, bit_width=bit_width)
    return {"accepted": accepted, "moves": moves, "comparisons": comparisons}
