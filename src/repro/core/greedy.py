"""Greedy initialisation of the workload-balancing solution (paper Alg. 1).

For every device ``u`` and every neighbour ``v``, the two endpoint devices
run one zero-knowledge degree comparison on the bucketised degrees
``round(ln(deg))``.  Device ``u`` keeps neighbour ``v`` in its tree only when
``round(ln(deg(v))) >= round(ln(deg(u)))`` — i.e. the lower-degree endpoint
keeps the edge, filling the workload gap between devices with a large degree
difference.  When the two buckets are equal *both* endpoints keep the edge
(both comparisons return ``>=``), which is exactly the behaviour of Alg. 1
and guarantees the edge-coverage constraint of Eq. 10.

Two kernels implement the loop:

* ``"batched"`` evaluates all directed-edge comparisons as one numpy block
  (:meth:`~repro.crypto.zero_knowledge.DegreeComparisonProtocol.compare_degrees_many`),
  charges the accountant with one bulk pattern record and the ledger with one
  columnar :class:`~repro.federation.events.BulkMessageEvent` — identical
  totals, canonical transcript and selected sets, at O(E) numpy cost instead
  of O(E) protocol objects.  In secure mode (``secure=True``) the outcomes
  are produced by the *vectorised millionaires' protocol itself* (batched
  table-OT simulation, ``execute=True``) rather than the analytic
  evaluation, so the structural information boundary of the per-edge loop is
  preserved while the whole block still runs in one pass;
* ``"reference"`` is the original per-edge message-level simulation, kept as
  the parity baseline.

**RNG stream contract** — neither kernel draws from the shared random stream:
the simulated 1-out-of-2^m table OTs need no masking randomness, so the
greedy phase is RNG-transparent and the two kernels leave any seeded
generator in the same state (pinned by ``tests/test_greedy_batched.py``).
The ``greedy_kernel`` knob still participates in the engine's construction
fingerprint so cached artifacts produced by different kernels are never
aliased should a future kernel start consuming the stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from ..crypto.oblivious_transfer import TranscriptAccountant
from ..crypto.zero_knowledge import DegreeComparisonProtocol
from ..federation.events import MessageKind
from ..federation.simulator import FederatedEnvironment
from .config import GREEDY_KERNELS as KERNELS
from .workload import Assignment


def comparison_message_bytes(bits_exchanged: int) -> int:
    """Ledger size of one SECURE_COMPARISON message.

    Both directions of a degree comparison carry the same transcript share;
    the reference loop and the batched kernel both derive their per-message
    byte count from this single helper so the two accountings cannot drift.
    """
    return max(1, int(bits_exchanged) // 8)


def greedy_initialization(
    environment: FederatedEnvironment,
    accountant: Optional[TranscriptAccountant] = None,
    bit_width: int = 8,
    rng: Optional[np.random.Generator] = None,
    kernel: str = "auto",
    secure: bool = False,
) -> Assignment:
    """Run Alg. 1 over the federated environment and return the assignment.

    One secure comparison is executed per *directed* neighbour relation
    (matching the per-device loop of Alg. 1, whose complexity is
    ``O(max_v deg(v) * L log L)``).  The transcripts (OT invocations, bits)
    accumulate into ``accountant`` and each comparison is charged to the
    environment's communication ledger as ``SECURE_COMPARISON`` traffic.

    ``kernel`` selects the implementation: ``"batched"`` (vectorised, the
    default resolution of ``"auto"``) or ``"reference"`` (the per-edge
    protocol loop).  ``secure`` makes the batched kernel *execute* the
    vectorised millionaires' protocol for its outcome bits instead of
    evaluating them analytically (the reference loop always executes the
    protocol).  All four combinations are equivalent in every recorded
    observable — selected sets, accountant totals and log, canonical ledger
    transcript, RNG state (see the module docstring for the RNG stream
    contract).
    """
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    accountant = accountant if accountant is not None else TranscriptAccountant()

    if kernel == "reference":
        selected = _select_reference(environment, accountant, bit_width, rng)
    else:
        selected = _select_batched(environment, accountant, bit_width, secure)

    assignment = Assignment(selected=selected)
    environment.apply_assignment(assignment.as_lists())
    return assignment


def _select_reference(
    environment: FederatedEnvironment,
    accountant: TranscriptAccountant,
    bit_width: int,
    rng: Optional[np.random.Generator],
) -> Dict[int, Set[int]]:
    """The per-edge protocol loop (message-level simulation, parity baseline)."""
    protocol = DegreeComparisonProtocol(bit_width=bit_width, accountant=accountant, rng=rng)

    selected: Dict[int, Set[int]] = {device_id: set() for device_id in environment.devices}

    for device_id in environment.device_ids():
        device = environment.devices[device_id]
        own_degree = device.degree
        for neighbor in device.ego.neighbors:
            neighbor = int(neighbor)
            neighbor_degree = environment.devices[neighbor].degree
            # Line 4 of Alg. 1: keep v when round(ln deg(v)) >= round(ln deg(u)).
            outcome = protocol.compare_degrees(neighbor_degree, own_degree)
            size_bytes = comparison_message_bytes(outcome.bits_exchanged)
            environment.exchange(
                device_id, neighbor, MessageKind.SECURE_COMPARISON, size_bytes,
                description="greedy-degree-comparison",
            )
            environment.exchange(
                neighbor, device_id, MessageKind.SECURE_COMPARISON, size_bytes,
                description="greedy-degree-comparison",
            )
            if outcome.left_bucket_ge_right:
                selected[device_id].add(neighbor)
    return selected


def _select_batched(
    environment: FederatedEnvironment,
    accountant: TranscriptAccountant,
    bit_width: int,
    secure: bool = False,
) -> Dict[int, Set[int]]:
    """Vectorised Alg. 1: all directed-edge comparisons as one numpy block.

    The directed-edge list comes from the environment's cached CSR adjacency
    (contiguous device ids) or from the directed-edge cache with a
    searchsorted id join (non-contiguous deployments).  The comparisons run
    through :meth:`DegreeComparisonProtocol.compare_degrees_many`, the
    edge-keep decision is one boolean mask, and the ledger is charged with a
    single columnar event carrying both directions of every edge.
    """
    device_ids = np.asarray(environment.device_ids(), dtype=np.int64)
    num_devices = int(device_ids.shape[0])
    if environment.has_contiguous_ids():
        indptr, indices = environment.adjacency_csr()
        degrees = np.diff(indptr)
        sources = np.repeat(device_ids, degrees)
        destinations = indices
        source_positions = sources
        destination_positions = destinations
    else:
        sources, destinations = environment.directed_edges()
        positions = np.searchsorted(device_ids, sources)
        order = np.argsort(positions, kind="stable")
        sources = sources[order]
        destinations = destinations[order]
        source_positions = positions[order]
        destination_positions = np.minimum(
            np.searchsorted(device_ids, destinations), num_devices - 1
        )
        # Every neighbour must be a device of the environment; the reference
        # loop fails loudly on environment.devices[neighbor], so the batched
        # id join must not silently map a dangling id onto another device.
        if not np.array_equal(device_ids[destination_positions], destinations):
            missing = destinations[device_ids[destination_positions] != destinations]
            raise KeyError(f"unknown neighbour device {int(missing[0])}")
        degrees = np.asarray(
            [environment.devices[int(device_id)].degree for device_id in device_ids],
            dtype=np.int64,
        )

    protocol = DegreeComparisonProtocol(bit_width=bit_width, accountant=accountant)
    count = int(sources.shape[0])
    keep = np.zeros(0, dtype=bool)
    if count:
        # Line 4 of Alg. 1 over all directed edges at once: device u keeps v
        # when round(ln deg(v)) >= round(ln deg(u)).
        batch = protocol.compare_degrees_many(
            degrees[destination_positions], degrees[source_positions], execute=secure
        )
        keep = batch.left_ge_right
        size_bytes = comparison_message_bytes(batch.cost.bits)
        round_index = environment.ledger.current_round
        environment.ledger.send_many(
            np.concatenate([sources, destinations]),
            np.concatenate([destinations, sources]),
            MessageKind.SECURE_COMPARISON,
            np.full(2 * count, size_bytes, dtype=np.int64),
            np.full(2 * count, round_index, dtype=np.int64),
            description="greedy-degree-comparison",
        )

    keep_counts = np.bincount(source_positions[keep], minlength=num_devices) if count else np.zeros(
        num_devices, dtype=np.int64
    )
    pieces = np.split(destinations[keep], np.cumsum(keep_counts)[:-1]) if num_devices else []
    return {
        int(device_ids[position]): set(pieces[position].tolist())
        for position in range(num_devices)
    }
