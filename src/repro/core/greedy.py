"""Greedy initialisation of the workload-balancing solution (paper Alg. 1).

For every device ``u`` and every neighbour ``v``, the two endpoint devices
run one zero-knowledge degree comparison on the bucketised degrees
``round(ln(deg))``.  Device ``u`` keeps neighbour ``v`` in its tree only when
``round(ln(deg(v))) >= round(ln(deg(u)))`` — i.e. the lower-degree endpoint
keeps the edge, filling the workload gap between devices with a large degree
difference.  When the two buckets are equal *both* endpoints keep the edge
(both comparisons return ``>=``), which is exactly the behaviour of Alg. 1
and guarantees the edge-coverage constraint of Eq. 10.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from ..crypto.oblivious_transfer import TranscriptAccountant
from ..crypto.zero_knowledge import DegreeComparisonProtocol
from ..federation.events import MessageKind
from ..federation.simulator import FederatedEnvironment
from .workload import Assignment


def greedy_initialization(
    environment: FederatedEnvironment,
    accountant: Optional[TranscriptAccountant] = None,
    bit_width: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> Assignment:
    """Run Alg. 1 over the federated environment and return the assignment.

    One secure comparison is executed per *directed* neighbour relation
    (matching the per-device loop of Alg. 1, whose complexity is
    ``O(max_v deg(v) * L log L)``).  The transcripts (OT invocations, bits)
    accumulate into ``accountant`` and each comparison is charged to the
    environment's communication ledger as ``SECURE_COMPARISON`` traffic.
    """
    accountant = accountant if accountant is not None else TranscriptAccountant()
    protocol = DegreeComparisonProtocol(bit_width=bit_width, accountant=accountant, rng=rng)

    selected: Dict[int, Set[int]] = {device_id: set() for device_id in environment.devices}

    for device_id in environment.device_ids():
        device = environment.devices[device_id]
        own_degree = device.degree
        for neighbor in device.ego.neighbors:
            neighbor = int(neighbor)
            neighbor_degree = environment.devices[neighbor].degree
            # Line 4 of Alg. 1: keep v when round(ln deg(v)) >= round(ln deg(u)).
            outcome = protocol.compare_degrees(neighbor_degree, own_degree)
            size_bytes = max(1, outcome.bits_exchanged // 8)
            environment.exchange(
                device_id, neighbor, MessageKind.SECURE_COMPARISON, size_bytes,
                description="greedy-degree-comparison",
            )
            environment.exchange(
                neighbor, device_id, MessageKind.SECURE_COMPARISON, size_bytes,
                description="greedy-degree-comparison",
            )
            if outcome.left_bucket_ge_right:
                selected[device_id].add(neighbor)

    assignment = Assignment(selected=selected)
    environment.apply_assignment(assignment.as_lists())
    return assignment
