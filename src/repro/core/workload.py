"""Workload-balancing problem state (paper Section V-B).

The decision variable of Eq. 10 is the 0/1 edge-direction assignment
``x_(u,v)`` ("device u keeps neighbour v in its tree").  We represent a
solution as the list of selected-neighbour sets ``(N_1, ..., N_|V|)`` —
exactly the output format of Alg. 1 / Alg. 2 — and provide the objective
``f(X) = max_u |N_u|``, the edge-coverage constraint check and the workload
statistics used by the evaluation (Fig. 7 CDF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.graph import Graph

# One reversed step of a k-step transition: ``(target, added)`` pairs in
# application order, where ``added`` records whether ``source`` was newly
# inserted into ``N_target`` (it may already have been there when both
# endpoints kept the edge).
TransferRecord = List[Tuple[int, bool]]


@dataclass
class Assignment:
    """A candidate solution of the workload-balancing problem."""

    selected: Dict[int, Set[int]]
    # Flat ``int64`` workload vector indexed by vertex id, maintained
    # incrementally by :meth:`apply_transfer` / :meth:`undo_transfer`.  Built
    # lazily by :meth:`workload_vector`; private to the balancing hot path —
    # callers that mutate ``selected`` directly must not rely on it.
    _workload_vector: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def full(cls, graph: Graph) -> "Assignment":
        """Every device keeps every neighbour (the untrimmed solution)."""
        return cls(
            selected={
                vertex: set(int(v) for v in graph.neighbors(vertex))
                for vertex in range(graph.num_nodes)
            }
        )

    @classmethod
    def from_lists(cls, lists: Mapping[int, Iterable[int]]) -> "Assignment":
        """Build from a mapping of vertex -> iterable of selected neighbours."""
        return cls(selected={int(k): set(int(v) for v in vs) for k, vs in lists.items()})

    def copy(self) -> "Assignment":
        """Deep copy (cheap: sets of ints)."""
        return Assignment(selected={k: set(v) for k, v in self.selected.items()})

    # ------------------------------------------------------------------ #
    # Objective and constraints
    # ------------------------------------------------------------------ #
    def workload(self, vertex: int) -> int:
        """``wl(vertex)`` = number of selected neighbours."""
        return len(self.selected.get(vertex, set()))

    def workloads(self) -> Dict[int, int]:
        """Workload of every device."""
        return {vertex: len(neighbors) for vertex, neighbors in self.selected.items()}

    def workload_array(self) -> np.ndarray:
        """Workloads as an array indexed by vertex id."""
        size = max(self.selected) + 1 if self.selected else 0
        array = np.zeros(size, dtype=np.int64)
        for vertex, neighbors in self.selected.items():
            array[vertex] = len(neighbors)
        return array

    def workload_vector(self, size: int) -> np.ndarray:
        """Maintained flat workload vector of length ``size``.

        Unlike :meth:`workload_array` (a fresh copy per call) the returned
        array is owned by the assignment and updated in place by
        :meth:`apply_transfer` / :meth:`undo_transfer`, so the balancing
        kernel can hold one reference for its whole run.
        """
        if self._workload_vector is None or self._workload_vector.shape[0] != size:
            vector = np.zeros(size, dtype=np.int64)
            for vertex, neighbors in self.selected.items():
                vector[vertex] = len(neighbors)
            self._workload_vector = vector
        return self._workload_vector

    def objective(self) -> int:
        """``f(X) = max_u |N_u|`` — the min-max objective of Eq. 10."""
        if not self.selected:
            return 0
        return max(len(neighbors) for neighbors in self.selected.values())

    def argmax_workload(self) -> int:
        """A vertex attaining the maximum workload (smallest id on ties)."""
        if not self.selected:
            raise ValueError("empty assignment")
        best_vertex, best_value = None, -1
        for vertex in sorted(self.selected):
            value = len(self.selected[vertex])
            if value > best_value:
                best_vertex, best_value = vertex, value
        return int(best_vertex)

    def covers_all_edges(self, graph: Graph) -> bool:
        """Constraint of Eq. 10: ``x_(u,v) + x_(v,u) >= 1`` for every edge."""
        for u, v in graph.edges:
            u, v = int(u), int(v)
            if v not in self.selected.get(u, set()) and u not in self.selected.get(v, set()):
                return False
        return True

    def uncovered_edges(self, graph: Graph) -> List[Tuple[int, int]]:
        """All edges violating the coverage constraint (empty when feasible)."""
        missing = []
        for u, v in graph.edges:
            u, v = int(u), int(v)
            if v not in self.selected.get(u, set()) and u not in self.selected.get(v, set()):
                missing.append((u, v))
        return missing

    def is_consistent_with(self, graph: Graph) -> bool:
        """No device selects a vertex that is not its neighbour."""
        for vertex, neighbors in self.selected.items():
            allowed = set(int(v) for v in graph.neighbors(vertex))
            if not neighbors.issubset(allowed):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Transitions (Eq. 16 / 17)
    # ------------------------------------------------------------------ #
    def transfer(self, source: int, targets: Sequence[int]) -> "Assignment":
        """Return a new assignment after the k-step transition of Eq. 17.

        Each ``v`` in ``targets`` is removed from ``N_source`` and ``source``
        is added to ``N_v``; coverage of the edge ``(source, v)`` is therefore
        preserved by construction.
        """
        result = self.copy()
        result.apply_transfer(source, targets)
        return result

    def apply_transfer(self, source: int, targets: Sequence[int]) -> TransferRecord:
        """Apply the transition of Eq. 17 *in place*, in O(k).

        Returns an undo record for :meth:`undo_transfer`.  The maintained
        workload vector (when built) is updated by deltas, so the balancing
        kernel never rebuilds per-device counts.
        """
        source = int(source)
        source_selected = self.selected.get(source)
        record: TransferRecord = []
        vector = self._workload_vector
        for target in targets:
            target = int(target)
            if source_selected is None or target not in source_selected:
                raise ValueError(f"vertex {target} is not selected by device {source}")
            source_selected.discard(target)
            target_selected = self.selected.setdefault(target, set())
            added = source not in target_selected
            if added:
                target_selected.add(source)
                if vector is not None:
                    vector[target] += 1
            if vector is not None:
                vector[source] -= 1
            record.append((target, added))
        return record

    def undo_transfer(self, source: int, record: TransferRecord) -> None:
        """Revert an :meth:`apply_transfer` given its undo record."""
        source = int(source)
        vector = self._workload_vector
        for target, added in reversed(record):
            if added:
                self.selected[target].discard(source)
                if vector is not None:
                    vector[target] -= 1
            self.selected[source].add(target)
            if vector is not None:
                vector[source] += 1

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def as_lists(self) -> Dict[int, List[int]]:
        """Return the selection as sorted lists (stable output format)."""
        return {vertex: sorted(neighbors) for vertex, neighbors in self.selected.items()}

    def total_selected_edges(self) -> int:
        """Total number of (vertex, neighbour) selections = total leaves / 2."""
        return sum(len(neighbors) for neighbors in self.selected.values())

    def statistics(self) -> Dict[str, float]:
        """Summary statistics of the workload distribution (used by Fig. 7)."""
        array = self.workload_array().astype(np.float64)
        if array.size == 0:
            return {"max": 0.0, "mean": 0.0, "std": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "max": float(array.max()),
            "mean": float(array.mean()),
            "std": float(array.std()),
            "p95": float(np.percentile(array, 95)),
            "p99": float(np.percentile(array, 99)),
        }


def workload_cdf(workloads: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(values, cumulative_probability)`` of the workload CDF (Fig. 7)."""
    workloads = np.asarray(workloads, dtype=np.float64)
    if workloads.size == 0:
        return np.zeros(0), np.zeros(0)
    values = np.sort(workloads)
    probabilities = np.arange(1, values.size + 1) / values.size
    return values, probabilities
