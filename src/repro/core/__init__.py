"""Lumos core: tree constructor, workload balancing and tree-based GNN trainer."""

from .config import (
    LumosConfig,
    RuntimeConfig,
    TrainerConfig,
    TreeConstructorConfig,
    default_config_for,
)
from .constructor import TreeConstructionResult, TreeConstructor
from .embedding_init import EmbeddingInitializationResult, LDPEmbeddingInitializer
from .greedy import greedy_initialization
from .lumos import LumosSupervisedResult, LumosSystem, LumosUnsupervisedResult
from .mcmc import MCMCBalancer, MCMCResult, find_max_workload_device
from .trainer import (
    EpochCostModel,
    LumosModel,
    SupervisedHistory,
    TreeBasedGNNTrainer,
    TreeBatch,
    UnsupervisedHistory,
    roc_auc_from_embeddings,
)
from .tree import LocalGraph, LocalNode, NodeRole, build_star, build_tree, expected_tree_size
from .workload import Assignment, workload_cdf

__all__ = [
    "LumosConfig",
    "RuntimeConfig",
    "TrainerConfig",
    "TreeConstructorConfig",
    "default_config_for",
    "TreeConstructor",
    "TreeConstructionResult",
    "LDPEmbeddingInitializer",
    "EmbeddingInitializationResult",
    "greedy_initialization",
    "MCMCBalancer",
    "MCMCResult",
    "find_max_workload_device",
    "TreeBasedGNNTrainer",
    "TreeBatch",
    "LumosModel",
    "EpochCostModel",
    "SupervisedHistory",
    "UnsupervisedHistory",
    "roc_auc_from_embeddings",
    "LumosSystem",
    "LumosSupervisedResult",
    "LumosUnsupervisedResult",
    "LocalGraph",
    "LocalNode",
    "NodeRole",
    "build_tree",
    "build_star",
    "expected_tree_size",
    "Assignment",
    "workload_cdf",
]
