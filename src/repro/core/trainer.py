"""Tree-based GNN trainer (paper Section VI).

Every device performs message passing over its own local tree; afterwards the
leaf embeddings that refer to the same global vertex are pooled across
devices (Eq. 31) to obtain the vertex embeddings used for the supervised
(cross-entropy, Eq. 32) or unsupervised (link prediction, Eq. 33) loss.

Simulation strategy
-------------------
The per-device trees share the same GNN weights (the federated model), and no
edges connect different trees.  Message passing over the *union* of all trees
— a block-diagonal graph — is therefore mathematically identical to running
the GNN on every tree separately, so the trainer builds that union graph once
(:class:`TreeBatch`) and trains on it with ordinary batched linear algebra.
The federated character of the computation is preserved by the communication
accounting (:meth:`TreeBasedGNNTrainer.communication_profile` and the epoch
cost model), which reflects what each *device* would have computed and sent:
its own tree, its own leaf-embedding exchanges, its own loss share.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..crypto.ldp import FeatureBounds
from ..federation.events import MessageKind
from ..federation.simulator import FederatedEnvironment
from ..gnn.models import EncoderConfig, GNNEncoder
from ..gnn.pooling import get_pooling
from ..graph.sparse import symmetric_normalize
from ..graph.splits import EdgeSplit, NodeSplit
from ..nn import functional as F
from ..nn.layers import Linear
from ..nn.loss import cross_entropy, link_prediction_loss
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from .config import TrainerConfig
from .constructor import TreeConstructionResult
from .embedding_init import EmbeddingInitializationResult
from .tree import NodeRole


# --------------------------------------------------------------------------- #
# Union graph of all per-device trees
# --------------------------------------------------------------------------- #
@dataclass
class TreeBatch:
    """Block-diagonal union of all per-device local graphs."""

    num_nodes: int
    num_vertices: int
    adjacency: sp.csr_matrix
    edge_index: np.ndarray
    features: np.ndarray
    leaf_rows: np.ndarray
    leaf_vertices: np.ndarray
    device_slices: Dict[int, Tuple[int, int]]

    @classmethod
    def build(
        cls,
        environment: FederatedEnvironment,
        construction: TreeConstructionResult,
        initialization: EmbeddingInitializationResult,
        feature_dim: int,
    ) -> "TreeBatch":
        """Assemble the union graph, its initial embeddings and leaf mapping.

        Initial embeddings follow Eq. 25: centre leaves carry the device's own
        raw feature, neighbour leaves carry the LDP-recovered feature received
        from that neighbour, virtual nodes carry zeros.
        """
        device_slices: Dict[int, Tuple[int, int]] = {}
        rows: List[int] = []
        cols: List[int] = []
        leaf_rows: List[int] = []
        leaf_vertices: List[int] = []
        offset = 0
        feature_blocks: List[np.ndarray] = []

        for device_id in environment.device_ids():
            local_graph = construction.local_graphs[device_id]
            device = environment.devices[device_id]
            size = local_graph.num_nodes
            device_slices[device_id] = (offset, size)

            block = np.zeros((size, feature_dim), dtype=np.float64)
            for node in local_graph.nodes:
                global_row = offset + node.local_id
                if node.vertex is None:
                    continue
                leaf_rows.append(global_row)
                leaf_vertices.append(int(node.vertex))
                if node.vertex == device_id:
                    block[node.local_id] = device.ego.feature
                else:
                    received = initialization.received_features[device_id].get(int(node.vertex))
                    if received is None:
                        # The neighbour never released its feature (degenerate
                        # trimming corner case); use the uninformative midpoint.
                        received = np.full(feature_dim, 0.5)
                    block[node.local_id] = received
            feature_blocks.append(block)

            for u, v in local_graph.edges:
                rows.append(offset + u)
                cols.append(offset + v)
                rows.append(offset + v)
                cols.append(offset + u)
            offset += size

        num_nodes = offset
        data = np.ones(len(rows), dtype=np.float64)
        adjacency_raw = sp.csr_matrix(
            (data, (np.asarray(rows), np.asarray(cols))), shape=(num_nodes, num_nodes)
        )
        adjacency = symmetric_normalize(adjacency_raw, self_loops=True)
        src = np.concatenate([np.asarray(cols, dtype=np.int64), np.arange(num_nodes)])
        dst = np.concatenate([np.asarray(rows, dtype=np.int64), np.arange(num_nodes)])
        edge_index = np.stack([src, dst])

        features = (
            np.concatenate(feature_blocks, axis=0)
            if feature_blocks
            else np.zeros((0, feature_dim))
        )
        return cls(
            num_nodes=num_nodes,
            num_vertices=environment.num_devices,
            adjacency=adjacency,
            edge_index=edge_index,
            features=features,
            leaf_rows=np.asarray(leaf_rows, dtype=np.int64),
            leaf_vertices=np.asarray(leaf_vertices, dtype=np.int64),
            device_slices=device_slices,
        )


class _BatchGraphInput:
    """Adapter exposing the union graph in the format GNNEncoder expects."""

    def __init__(self, batch: TreeBatch) -> None:
        self.adjacency = batch.adjacency
        self.edge_index = batch.edge_index

    @property
    def num_nodes(self) -> int:
        return int(self.adjacency.shape[0])


# --------------------------------------------------------------------------- #
# The Lumos model: encoder over trees + cross-device POOL + task heads
# --------------------------------------------------------------------------- #
class LumosModel(Module):
    """Shared federated model: tree GNN encoder, POOL layer and classifier head."""

    def __init__(
        self,
        feature_dim: int,
        num_classes: Optional[int],
        config: TrainerConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        encoder_config = EncoderConfig(
            backbone=config.backbone,
            num_layers=config.num_layers,
            hidden_dim=config.hidden_dim,
            output_dim=config.output_dim,
            dropout=config.dropout,
            num_heads=config.num_heads,
        )
        self.encoder = GNNEncoder(feature_dim, encoder_config, rng=rng)
        self.pooling = get_pooling(config.pooling)
        self.head = (
            Linear(self.encoder.output_dim, num_classes, rng=rng)
            if num_classes is not None
            else None
        )

    def vertex_embeddings(self, batch: TreeBatch, features: Tensor) -> Tensor:
        """Run message passing on every tree and pool leaves per vertex (Eq. 31)."""
        node_embeddings = self.encoder(features, _BatchGraphInput(batch))
        leaf_embeddings = F.gather(node_embeddings, batch.leaf_rows)
        return self.pooling(leaf_embeddings, batch.leaf_vertices, batch.num_vertices)

    def logits(self, batch: TreeBatch, features: Tensor) -> Tensor:
        """Class logits per vertex (supervised task, Eq. 32)."""
        if self.head is None:
            raise RuntimeError("model was built without a classification head")
        return self.head(self.vertex_embeddings(batch, features))


# --------------------------------------------------------------------------- #
# Cost model for the simulated system metrics (Fig. 8)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EpochCostModel:
    """Translates per-device work into simulated per-epoch wall-clock time.

    ``compute_per_node`` is the cost of one tree node in one epoch (forward +
    backward), ``time_per_round`` is the latency of one inter-device
    communication round, and ``fixed_overhead`` covers the per-epoch work that
    trimming cannot remove (optimizer step, loss aggregation barrier).  The
    epoch ends when the slowest device finishes (synchronous protocol).
    """

    compute_per_node: float = 0.03
    time_per_round: float = 0.25
    fixed_overhead: float = 20.0

    def epoch_time(self, tree_sizes: np.ndarray, rounds_per_device: np.ndarray) -> float:
        """Simulated duration of one epoch (seconds)."""
        per_device = (
            tree_sizes.astype(np.float64) * self.compute_per_node
            + rounds_per_device.astype(np.float64) * self.time_per_round
        )
        return float(self.fixed_overhead + per_device.max()) if per_device.size else 0.0


# --------------------------------------------------------------------------- #
# Training histories
# --------------------------------------------------------------------------- #
@dataclass
class SupervisedHistory:
    """Per-epoch record of a supervised training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    test_accuracy: float = 0.0
    best_val_accuracy: float = 0.0
    wall_clock_seconds: float = 0.0


@dataclass
class UnsupervisedHistory:
    """Per-epoch record of an unsupervised training run."""

    losses: List[float] = field(default_factory=list)
    val_auc: List[float] = field(default_factory=list)
    test_auc: float = 0.0
    best_val_auc: float = 0.0
    wall_clock_seconds: float = 0.0


# --------------------------------------------------------------------------- #
# Trainer
# --------------------------------------------------------------------------- #
class TreeBasedGNNTrainer:
    """Trains the Lumos model over a federated environment."""

    def __init__(
        self,
        environment: FederatedEnvironment,
        construction: TreeConstructionResult,
        initialization: EmbeddingInitializationResult,
        config: TrainerConfig,
        rng: Optional[np.random.Generator] = None,
        cost_model: EpochCostModel = EpochCostModel(),
    ) -> None:
        self.environment = environment
        self.construction = construction
        self.initialization = initialization
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng()
        self.cost_model = cost_model

        sample_feature = next(iter(environment.devices.values())).ego.feature
        self.feature_dim = int(sample_feature.shape[0])
        self.batch = TreeBatch.build(environment, construction, initialization, self.feature_dim)
        self._features = Tensor(self.batch.features)

    # ------------------------------------------------------------------ #
    # System metrics
    # ------------------------------------------------------------------ #
    def tree_sizes(self) -> np.ndarray:
        """Number of local-graph nodes per device."""
        sizes = np.zeros(self.environment.num_devices, dtype=np.int64)
        for device_id, (start, size) in self.batch.device_slices.items():
            sizes[device_id] = size
        return sizes

    def communication_profile(self, task: str = "supervised") -> Dict[str, np.ndarray]:
        """Per-device inter-device communication rounds in one training epoch.

        A device ``u`` participates in one round per leaf-embedding it sends
        (``wl(u)``, one per selected neighbour), one per embedding it receives
        back (one for every device that kept ``u``), and one round of loss
        aggregation.  The unsupervised task additionally requests and receives
        negative-sample embeddings — as many as the device's original degree,
        independent of trimming (negatives are non-neighbours).
        """
        if task not in ("supervised", "unsupervised"):
            raise ValueError("task must be 'supervised' or 'unsupervised'")
        num_devices = self.environment.num_devices
        workloads = self.construction.assignment.workload_array()
        if workloads.shape[0] < num_devices:
            workloads = np.pad(workloads, (0, num_devices - workloads.shape[0]))

        incoming = np.zeros(num_devices, dtype=np.int64)
        for device_id, selected in self.construction.assignment.selected.items():
            for neighbor in selected:
                incoming[int(neighbor)] += 1

        rounds = workloads + incoming + 1
        if task == "unsupervised":
            degrees = np.zeros(num_devices, dtype=np.int64)
            for device_id, device in self.environment.devices.items():
                degrees[device_id] = device.degree
            rounds = rounds + 2 * degrees
        return {
            "per_device_rounds": rounds,
            "workloads": workloads,
            "incoming": incoming,
        }

    def simulated_epoch_time(self, task: str = "supervised") -> float:
        """Simulated wall-clock duration of one synchronous epoch (Fig. 8b)."""
        profile = self.communication_profile(task)
        return self.cost_model.epoch_time(self.tree_sizes(), profile["per_device_rounds"])

    def _charge_epoch(self, task: str) -> None:
        """Charge one epoch's communication and compute to the ledger (aggregated)."""
        profile = self.communication_profile(task)
        total_rounds = int(profile["per_device_rounds"].sum())
        self.environment.ledger.send(
            sender=0,
            recipient=0,
            kind=MessageKind.EMBEDDING_EXCHANGE,
            size_bytes=total_rounds * self.config.output_dim * 8,
            description=f"epoch-{task}-rounds:{total_rounds}",
        )
        sizes = self.tree_sizes()
        for device_id in range(sizes.shape[0]):
            self.environment.ledger.compute(
                device_id, float(sizes[device_id]), description="tree-gnn-epoch"
            )
        self.environment.next_round()

    # ------------------------------------------------------------------ #
    # Supervised training (node classification)
    # ------------------------------------------------------------------ #
    def train_supervised(
        self,
        labels: np.ndarray,
        split: NodeSplit,
        epochs: Optional[int] = None,
        log_every: int = 0,
    ) -> Tuple[LumosModel, SupervisedHistory]:
        """Train for node classification and return the model and its history."""
        labels = np.asarray(labels, dtype=np.int64)
        num_classes = int(labels.max()) + 1
        epochs = epochs if epochs is not None else self.config.epochs
        model = LumosModel(self.feature_dim, num_classes, self.config, rng=self.rng)
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        history = SupervisedHistory()
        best_state = None
        start = time.perf_counter()

        for epoch in range(epochs):
            model.train()
            logits = model.logits(self.batch, self._features)
            loss = cross_entropy(logits, labels, mask=split.train_mask)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

            with no_grad():
                model.eval()
                eval_logits = model.logits(self.batch, self._features)
                predictions = np.argmax(eval_logits.data, axis=1)
            train_acc = float((predictions[split.train_mask] == labels[split.train_mask]).mean())
            val_acc = float((predictions[split.val_mask] == labels[split.val_mask]).mean())
            history.losses.append(loss.item())
            history.train_accuracy.append(train_acc)
            history.val_accuracy.append(val_acc)
            if val_acc >= history.best_val_accuracy:
                history.best_val_accuracy = val_acc
                best_state = model.state_dict()
            self._charge_epoch("supervised")
            if log_every and (epoch + 1) % log_every == 0:
                print(
                    f"[lumos supervised] epoch {epoch + 1}/{epochs} "
                    f"loss={loss.item():.4f} val_acc={val_acc:.4f}"
                )

        if best_state is not None:
            model.load_state_dict(best_state)
        with no_grad():
            model.eval()
            final_logits = model.logits(self.batch, self._features)
            final_predictions = np.argmax(final_logits.data, axis=1)
        history.test_accuracy = float(
            (final_predictions[split.test_mask] == labels[split.test_mask]).mean()
        )
        history.wall_clock_seconds = time.perf_counter() - start
        return model, history

    # ------------------------------------------------------------------ #
    # Unsupervised training (link prediction)
    # ------------------------------------------------------------------ #
    def train_unsupervised(
        self,
        edge_split: EdgeSplit,
        epochs: Optional[int] = None,
        log_every: int = 0,
    ) -> Tuple[LumosModel, UnsupervisedHistory]:
        """Train with the link-prediction objective of Eq. 33."""
        epochs = epochs if epochs is not None else self.config.epochs
        model = LumosModel(self.feature_dim, None, self.config, rng=self.rng)
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        history = UnsupervisedHistory()
        best_state = None
        start = time.perf_counter()

        train_pairs = np.asarray(edge_split.train_edges, dtype=np.int64)
        existing = {tuple(sorted((int(u), int(v)))) for u, v in train_pairs}

        for epoch in range(epochs):
            model.train()
            embeddings = model.vertex_embeddings(self.batch, self._features)
            negatives = self._sample_negative_pairs(train_pairs, existing)
            loss = link_prediction_loss(
                F.gather(embeddings, train_pairs[:, 0]),
                F.gather(embeddings, train_pairs[:, 1]),
                F.gather(embeddings, negatives[:, 1]),
            )
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

            with no_grad():
                model.eval()
                eval_embeddings = model.vertex_embeddings(self.batch, self._features)
            val_auc = roc_auc_from_embeddings(
                eval_embeddings.data, edge_split.val_edges, edge_split.val_negatives
            )
            history.losses.append(loss.item())
            history.val_auc.append(val_auc)
            if val_auc >= history.best_val_auc:
                history.best_val_auc = val_auc
                best_state = model.state_dict()
            self._charge_epoch("unsupervised")
            if log_every and (epoch + 1) % log_every == 0:
                print(
                    f"[lumos unsupervised] epoch {epoch + 1}/{epochs} "
                    f"loss={loss.item():.4f} val_auc={val_auc:.4f}"
                )

        if best_state is not None:
            model.load_state_dict(best_state)
        with no_grad():
            model.eval()
            final_embeddings = model.vertex_embeddings(self.batch, self._features)
        history.test_auc = roc_auc_from_embeddings(
            final_embeddings.data, edge_split.test_edges, edge_split.test_negatives
        )
        history.wall_clock_seconds = time.perf_counter() - start
        return model, history

    def _sample_negative_pairs(self, positive_pairs: np.ndarray, existing: set) -> np.ndarray:
        """One negative (u, w) per positive (u, v) with (u, w) not an edge."""
        num_vertices = self.environment.num_devices
        negatives = np.empty_like(positive_pairs)
        for index, (u, _) in enumerate(positive_pairs):
            for _ in range(20):
                candidate = int(self.rng.integers(num_vertices))
                if candidate != int(u) and tuple(sorted((int(u), candidate))) not in existing:
                    break
            negatives[index] = (int(u), candidate)
        return negatives


def roc_auc_from_embeddings(
    embeddings: np.ndarray, positive_edges: np.ndarray, negative_edges: np.ndarray
) -> float:
    """ROC-AUC of inner-product scores on positive vs negative vertex pairs."""
    from ..eval.metrics import roc_auc_score

    positive_edges = np.asarray(positive_edges, dtype=np.int64)
    negative_edges = np.asarray(negative_edges, dtype=np.int64)
    positive_scores = np.sum(
        embeddings[positive_edges[:, 0]] * embeddings[positive_edges[:, 1]], axis=1
    )
    negative_scores = np.sum(
        embeddings[negative_edges[:, 0]] * embeddings[negative_edges[:, 1]], axis=1
    )
    scores = np.concatenate([positive_scores, negative_scores])
    targets = np.concatenate([np.ones(len(positive_scores)), np.zeros(len(negative_scores))])
    return roc_auc_score(targets, scores)
