"""Tree-based GNN trainer (paper Section VI).

Every device performs message passing over its own local tree; afterwards the
leaf embeddings that refer to the same global vertex are pooled across
devices (Eq. 31) to obtain the vertex embeddings used for the supervised
(cross-entropy, Eq. 32) or unsupervised (link prediction, Eq. 33) loss.

Simulation strategy
-------------------
The per-device trees share the same GNN weights (the federated model), and no
edges connect different trees.  Message passing over the *union* of all trees
— a block-diagonal graph — is therefore mathematically identical to running
the GNN on every tree separately, so the trainer builds that union graph once
(:class:`TreeBatch`) and trains on it with ordinary batched linear algebra.
The federated character of the computation is preserved by the communication
accounting (:meth:`TreeBasedGNNTrainer.communication_profile` and the epoch
cost model), which reflects what each *device* would have computed and sent:
its own tree, its own leaf-embedding exchanges, its own loss share.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .. import obs
from ..crypto.ldp import FeatureBounds
from ..faults.config import FaultScenarioConfig
from ..faults.plan import FaultPlan
from ..federation.events import MessageKind
from ..federation.simulator import FederatedEnvironment
from ..gnn.gcn import _COMPRESS_ZERO_FRACTION, GCNLayer
from ..gnn.models import EncoderConfig, GNNEncoder
from ..gnn.pooling import get_pooling
from ..nn.backend import get_backend, resolve_backend, use_backend
from ..graph.sparse import symmetric_normalize
from ..graph.splits import EdgeSplit, NodeSplit
from ..nn import functional as F
from ..nn.layers import Linear
from ..nn.loss import cross_entropy, link_prediction_loss
from ..nn.module import Module, Parameter
from ..nn.optim import Adam
from ..nn.tensor import Tensor, _as_array, no_grad
from .config import TrainerConfig
from .constructor import TreeConstructionResult
from .embedding_init import EmbeddingInitializationResult
from .tree import NodeRole


# --------------------------------------------------------------------------- #
# Union graph of all per-device trees
# --------------------------------------------------------------------------- #
@dataclass
class TreeBatch:
    """Block-diagonal union of all per-device local graphs.

    ``leaf_vertices`` holds, per leaf row, the *position* of the referenced
    vertex in the sorted device-id order — identical to the global vertex id
    whenever device ids are the contiguous ``0..n-1`` of a node-level
    partition, and a dense re-indexing otherwise (so pooling into
    ``num_vertices`` rows is well-defined for sparse device ids too).
    """

    num_nodes: int
    num_vertices: int
    adjacency: sp.csr_matrix
    edge_index: np.ndarray
    features: np.ndarray
    leaf_rows: np.ndarray
    leaf_vertices: np.ndarray
    device_slices: Dict[int, Tuple[int, int]]
    # Refill recipe for the epsilon-dependent feature rows: ``neighbor_rows``
    # are the feature-matrix rows carrying LDP-recovered features, received
    # by ``neighbor_receivers`` from ``neighbor_senders``.  Everything else
    # in the batch (structure, centre features) is epsilon-independent, so a
    # cached batch can be re-bound to another sweep point's LDP exchange via
    # :meth:`with_initialization` instead of being rebuilt.
    neighbor_rows: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    neighbor_receivers: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    neighbor_senders: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _pool_matrix: Optional[sp.csr_matrix] = field(default=None, repr=False, compare=False)
    _folded_pool_adjacency: Any = field(default=None, repr=False, compare=False)
    _pool_row_sums: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    def mean_pool_matrix(self) -> sp.csr_matrix:
        """Sparse ``(num_vertices, num_nodes)`` operator computing Eq. 31.

        Row ``v`` holds ``1 / count(v)`` at every leaf row referring to vertex
        ``v``; multiplying node embeddings by it performs gather + mean-pool
        in one sparse product (vertices without leaves yield zeros, matching
        the scatter-based pooling).  Built lazily and cached on the batch.
        """
        if self._pool_matrix is None:
            counts = np.bincount(self.leaf_vertices, minlength=self.num_vertices)
            weights = 1.0 / np.maximum(counts[self.leaf_vertices], 1).astype(np.float64)
            self._pool_matrix = sp.csr_matrix(
                (weights, (self.leaf_vertices, self.leaf_rows)),
                shape=(self.num_vertices, self.num_nodes),
            )
        return self._pool_matrix

    def folded_pool_adjacency(self):
        """Mean-pool and propagation folded into one prepared operator.

        ``P (Â H W + 1 bᵀ) = (P Â) (H W) + (P 1) ⊗ b`` — the constant chain
        ``P Â`` is collapsed once per batch (``OpsBackend.fold_chain``) so the
        final GCN layer plus pooling costs a single sparse product per epoch
        instead of two.  The result is a backend-agnostic
        :class:`~repro.nn.backend.PreparedMatrix`, cached on the batch; the
        engine prewarms it on the cached ``tree_batch`` artifact so every
        sweep point re-bound via :meth:`with_initialization` shares it.
        """
        if self._folded_pool_adjacency is None:
            self._folded_pool_adjacency = get_backend().fold_chain(
                [self.mean_pool_matrix(), self.adjacency]
            )
        return self._folded_pool_adjacency

    def pool_row_sums(self) -> np.ndarray:
        """Row sums ``P 1`` of the mean-pool operator (bias term of the fold)."""
        if self._pool_row_sums is None:
            self._pool_row_sums = np.asarray(
                self.mean_pool_matrix().sum(axis=1)
            ).ravel()
        return self._pool_row_sums

    def with_initialization(
        self, initialization: EmbeddingInitializationResult
    ) -> "TreeBatch":
        """Re-bind the batch to another LDP exchange of the same construction.

        Returns a batch sharing every epsilon-independent array (adjacency,
        edge index, leaf maps, pool matrix) with ``self``, with a fresh
        feature matrix whose neighbour-leaf rows are filled from
        ``initialization`` — exactly the rows a from-scratch build would
        produce for it.
        """
        if self.neighbor_rows is None:
            raise ValueError("batch was built without a neighbour-refill recipe")
        features = self.features.copy()
        if self.neighbor_rows.shape[0]:
            features[self.neighbor_rows] = self._lookup_received_features(
                initialization,
                self.neighbor_receivers,
                self.neighbor_senders,
                features.shape[1],
            )
        return dataclasses.replace(self, features=features)

    @classmethod
    def build(
        cls,
        environment: FederatedEnvironment,
        construction: TreeConstructionResult,
        initialization: EmbeddingInitializationResult,
        feature_dim: int,
    ) -> "TreeBatch":
        """Assemble the union graph, its initial embeddings and leaf mapping.

        Initial embeddings follow Eq. 25: centre leaves carry the device's own
        raw feature, neighbour leaves carry the LDP-recovered feature received
        from that neighbour, virtual nodes carry zeros.

        Assembly is pure numpy block arithmetic over the canonical tree / star
        layouts (no per-node python loops); local graphs that do not follow
        the canonical layout fall back to the generic per-node path.
        """
        batch = cls._build_vectorized(environment, construction, initialization, feature_dim)
        if batch is not None:
            return batch
        return cls._build_generic(environment, construction, initialization, feature_dim)

    # ------------------------------------------------------------------ #
    # Fast path: canonical layouts, pure array arithmetic
    # ------------------------------------------------------------------ #
    @classmethod
    def _build_vectorized(
        cls,
        environment: FederatedEnvironment,
        construction: TreeConstructionResult,
        initialization: EmbeddingInitializationResult,
        feature_dim: int,
    ) -> Optional["TreeBatch"]:
        ids_list = environment.device_ids()
        if not ids_list or not construction.canonical_layout:
            return None
        ids = np.asarray(ids_list, dtype=np.int64)
        n = ids.shape[0]
        use_vn = construction.used_virtual_nodes

        as_lists = construction.assignment.as_lists()
        neighbor_lists = [
            np.asarray(as_lists.get(int(d), ()), dtype=np.int64) for d in ids
        ]
        w = np.asarray([block.shape[0] for block in neighbor_lists], dtype=np.int64)
        sizes = np.where(w == 0, 1, 3 * w + 1) if use_vn else w + 1

        # The canonical layouts are exactly what build_tree / build_star emit
        # for the (sorted) selected-neighbour lists; a size mismatch means the
        # local graphs were constructed differently -> use the generic path.
        for device_id, size in zip(ids_list, sizes):
            local_graph = construction.local_graphs.get(device_id)
            if local_graph is None or local_graph.num_nodes != int(size):
                return None

        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        num_nodes = int(sizes.sum())
        total = int(w.sum())
        flat_neighbors = (
            np.concatenate(neighbor_lists) if total else np.zeros(0, dtype=np.int64)
        )
        # One entry per (device, selected-neighbour) pair, devices in id order.
        rep = np.repeat(np.arange(n), w)
        pair_rank = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(w) - w, w)
        pair_owners = ids[rep]

        if use_vn:
            base = offsets[rep] + 3 * pair_rank
            triplets = np.empty((total, 3, 2), dtype=np.int64)
            triplets[:, 0, 0] = offsets[rep]  # root -> parent
            triplets[:, 0, 1] = base + 1
            triplets[:, 1, 0] = base + 1  # parent -> centre leaf
            triplets[:, 1, 1] = base + 2
            triplets[:, 2, 0] = base + 1  # parent -> neighbour leaf
            triplets[:, 2, 1] = base + 3
            undirected = triplets.reshape(-1, 2)
            center_rows = base + 2
            neighbor_rows = base + 3
            leaf_counts = np.where(w == 0, 1, 2 * w)
        else:
            neighbor_rows = offsets[rep] + 1 + pair_rank
            undirected = np.stack([offsets[rep], neighbor_rows], axis=1)
            center_rows = None
            leaf_counts = w + 1

        leaf_offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(leaf_counts[:-1], out=leaf_offsets[1:])
        num_leaves = int(leaf_counts.sum())
        leaf_rows = np.empty(num_leaves, dtype=np.int64)
        leaf_vertices = np.empty(num_leaves, dtype=np.int64)
        if use_vn:
            pair_positions = leaf_offsets[rep] + 2 * pair_rank
            leaf_rows[pair_positions] = center_rows
            leaf_vertices[pair_positions] = pair_owners
            leaf_rows[pair_positions + 1] = neighbor_rows
            leaf_vertices[pair_positions + 1] = flat_neighbors
            isolated = w == 0
            leaf_rows[leaf_offsets[isolated]] = offsets[isolated]
            leaf_vertices[leaf_offsets[isolated]] = ids[isolated]
        else:
            leaf_rows[leaf_offsets] = offsets
            leaf_vertices[leaf_offsets] = ids
            pair_positions = leaf_offsets[rep] + 1 + pair_rank
            leaf_rows[pair_positions] = neighbor_rows
            leaf_vertices[pair_positions] = flat_neighbors

        # --- features: centre rows carry raw features, neighbour rows carry
        # the LDP-recovered features, virtual rows stay zero (Eq. 25) --------
        features = np.zeros((num_nodes, feature_dim), dtype=np.float64)
        own_features = np.stack(
            [environment.devices[int(d)].ego.feature for d in ids]
        ).astype(np.float64, copy=False)
        if use_vn:
            if total:
                features[center_rows] = own_features[rep]
            isolated = w == 0
            features[offsets[isolated]] = own_features[isolated]
        else:
            features[offsets] = own_features
        if total:
            features[neighbor_rows] = cls._lookup_received_features(
                initialization, pair_owners, flat_neighbors, feature_dim
            )

        # --- adjacency and edge index, preserving the generic edge order ----
        rows = undirected.ravel()
        cols = undirected[:, ::-1].ravel()
        data = np.ones(rows.shape[0], dtype=np.float64)
        adjacency_raw = sp.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
        adjacency = symmetric_normalize(adjacency_raw, self_loops=True)
        src = np.concatenate([cols, np.arange(num_nodes)])
        dst = np.concatenate([rows, np.arange(num_nodes)])
        edge_index = np.stack([src, dst])

        device_slices = {
            int(d): (int(o), int(s)) for d, o, s in zip(ids, offsets, sizes)
        }
        return cls(
            num_nodes=num_nodes,
            num_vertices=environment.num_devices,
            adjacency=adjacency,
            edge_index=edge_index,
            features=features,
            leaf_rows=leaf_rows,
            leaf_vertices=np.searchsorted(ids, leaf_vertices),
            device_slices=device_slices,
            neighbor_rows=np.asarray(neighbor_rows, dtype=np.int64),
            neighbor_receivers=np.asarray(pair_owners, dtype=np.int64),
            neighbor_senders=np.asarray(flat_neighbors, dtype=np.int64),
        )

    @staticmethod
    def _lookup_received_features(
        initialization: EmbeddingInitializationResult,
        receivers: np.ndarray,
        senders: np.ndarray,
        feature_dim: int,
    ) -> np.ndarray:
        """Recovered feature per ``(receiver, sender)`` pair, vectorised.

        Pairs for which the sender never released its feature (degenerate
        trimming corner case) fall back to the uninformative midpoint 0.5.
        """
        packed = initialization.packed()
        stored_receivers, stored_senders, stored_features = packed
        out = np.full((receivers.shape[0], feature_dim), 0.5, dtype=np.float64)
        if stored_receivers.shape[0] == 0:
            return out
        base = int(
            max(
                receivers.max(initial=0),
                senders.max(initial=0),
                stored_receivers.max(initial=0),
                stored_senders.max(initial=0),
            )
        ) + 1
        stored_codes = stored_receivers * base + stored_senders
        order = np.argsort(stored_codes)
        stored_codes = stored_codes[order]
        query_codes = receivers * base + senders
        positions = np.searchsorted(stored_codes, query_codes)
        positions = np.minimum(positions, stored_codes.shape[0] - 1)
        matched = stored_codes[positions] == query_codes
        out[matched] = stored_features[order[positions[matched]]]
        return out

    # ------------------------------------------------------------------ #
    # Generic path: arbitrary local-graph layouts (per-node traversal)
    # ------------------------------------------------------------------ #
    @classmethod
    def _build_generic(
        cls,
        environment: FederatedEnvironment,
        construction: TreeConstructionResult,
        initialization: EmbeddingInitializationResult,
        feature_dim: int,
    ) -> "TreeBatch":
        device_slices: Dict[int, Tuple[int, int]] = {}
        rows: List[int] = []
        cols: List[int] = []
        leaf_rows: List[int] = []
        leaf_vertices: List[int] = []
        neighbor_rows: List[int] = []
        neighbor_receivers: List[int] = []
        neighbor_senders: List[int] = []
        offset = 0
        feature_blocks: List[np.ndarray] = []

        for device_id in environment.device_ids():
            local_graph = construction.local_graphs[device_id]
            device = environment.devices[device_id]
            size = local_graph.num_nodes
            device_slices[device_id] = (offset, size)

            block = np.zeros((size, feature_dim), dtype=np.float64)
            for node in local_graph.nodes:
                global_row = offset + node.local_id
                if node.vertex is None:
                    continue
                leaf_rows.append(global_row)
                leaf_vertices.append(int(node.vertex))
                if node.vertex == device_id:
                    block[node.local_id] = device.ego.feature
                else:
                    received = initialization.received_features[device_id].get(int(node.vertex))
                    if received is None:
                        # The neighbour never released its feature (degenerate
                        # trimming corner case); use the uninformative midpoint.
                        received = np.full(feature_dim, 0.5)
                    block[node.local_id] = received
                    neighbor_rows.append(global_row)
                    neighbor_receivers.append(device_id)
                    neighbor_senders.append(int(node.vertex))
            feature_blocks.append(block)

            for u, v in local_graph.edges:
                rows.append(offset + u)
                cols.append(offset + v)
                rows.append(offset + v)
                cols.append(offset + u)
            offset += size

        num_nodes = offset
        data = np.ones(len(rows), dtype=np.float64)
        adjacency_raw = sp.csr_matrix(
            (data, (np.asarray(rows), np.asarray(cols))), shape=(num_nodes, num_nodes)
        )
        adjacency = symmetric_normalize(adjacency_raw, self_loops=True)
        src = np.concatenate([np.asarray(cols, dtype=np.int64), np.arange(num_nodes)])
        dst = np.concatenate([np.asarray(rows, dtype=np.int64), np.arange(num_nodes)])
        edge_index = np.stack([src, dst])

        features = (
            np.concatenate(feature_blocks, axis=0)
            if feature_blocks
            else np.zeros((0, feature_dim))
        )
        ids = np.asarray(environment.device_ids(), dtype=np.int64)
        return cls(
            num_nodes=num_nodes,
            num_vertices=environment.num_devices,
            adjacency=adjacency,
            edge_index=edge_index,
            features=features,
            leaf_rows=np.asarray(leaf_rows, dtype=np.int64),
            leaf_vertices=np.searchsorted(ids, np.asarray(leaf_vertices, dtype=np.int64)),
            device_slices=device_slices,
            neighbor_rows=np.asarray(neighbor_rows, dtype=np.int64),
            neighbor_receivers=np.asarray(neighbor_receivers, dtype=np.int64),
            neighbor_senders=np.asarray(neighbor_senders, dtype=np.int64),
        )


class _BatchGraphInput:
    """Adapter exposing the union graph in the format GNNEncoder expects."""

    def __init__(self, batch: TreeBatch) -> None:
        self.adjacency = batch.adjacency
        self.edge_index = batch.edge_index

    @property
    def num_nodes(self) -> int:
        return int(self.adjacency.shape[0])


# --------------------------------------------------------------------------- #
# The Lumos model: encoder over trees + cross-device POOL + task heads
# --------------------------------------------------------------------------- #
class LumosModel(Module):
    """Shared federated model: tree GNN encoder, POOL layer and classifier head."""

    def __init__(
        self,
        feature_dim: int,
        num_classes: Optional[int],
        config: TrainerConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        encoder_config = EncoderConfig(
            backbone=config.backbone,
            num_layers=config.num_layers,
            hidden_dim=config.hidden_dim,
            output_dim=config.output_dim,
            dropout=config.dropout,
            num_heads=config.num_heads,
        )
        self.encoder = GNNEncoder(feature_dim, encoder_config, rng=rng)
        self.pooling = get_pooling(config.pooling)
        self.fold_propagation = config.fold_propagation
        self.head = (
            Linear(self.encoder.output_dim, num_classes, rng=rng)
            if num_classes is not None
            else None
        )

    def _uses_mean_pool(self) -> bool:
        return self.pooling is get_pooling("mean")

    def vertex_embeddings(self, batch: TreeBatch, features: Tensor) -> Tensor:
        """Run message passing on every tree and pool leaves per vertex (Eq. 31)."""
        node_embeddings = self.encoder(features, _BatchGraphInput(batch))
        if self._uses_mean_pool() and get_backend().allow_fused:
            # Gather + mean-pool fused into one sparse product (same maths,
            # one kernel instead of three).
            return F.sparse_matmul(batch.mean_pool_matrix(), node_embeddings)
        leaf_embeddings = F.gather(node_embeddings, batch.leaf_rows)
        return self.pooling(leaf_embeddings, batch.leaf_vertices, batch.num_vertices)

    def logits(self, batch: TreeBatch, features: Tensor) -> Tensor:
        """Class logits per vertex (supervised task, Eq. 32)."""
        if self.head is None:
            raise RuntimeError("model was built without a classification head")
        backend = get_backend()
        if backend.allow_fused and self._uses_mean_pool():
            final = self.encoder.final_layer
            if (
                self.fold_propagation
                and isinstance(final, GCNLayer)
                and final.bias is not None
                and self.head.bias is not None
            ):
                # Fold the final layer's propagation with the pooling
                # operator (one precomputed ``P Â`` product replaces the
                # propagate-then-pool pair, see folded_pool_adjacency) and
                # absorb the classifier head into the same node: the two
                # weight matrices collapse to one ``(hidden, classes)``
                # product so every kernel runs at ``num_classes`` width.
                hidden = self.encoder.forward_hidden(features, _BatchGraphInput(batch))
                return F.fused_folded_head(
                    hidden,
                    batch.folded_pool_adjacency(),
                    final.weight,
                    final.bias,
                    self.head.weight,
                    self.head.bias,
                    batch.pool_row_sums(),
                )
            # No fold (GAT backbone or folding disabled): mean-pool and the
            # classifier head still collapse into one autograd node.
            node_embeddings = self.encoder(features, _BatchGraphInput(batch))
            return F.fused_pool_head(
                node_embeddings,
                batch.mean_pool_matrix(),
                self.head.weight,
                self.head.bias,
            )
        return self.head(self.vertex_embeddings(batch, features))


# --------------------------------------------------------------------------- #
# Cost model for the simulated system metrics (Fig. 8)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EpochCostModel:
    """Translates per-device work into simulated per-epoch wall-clock time.

    ``compute_per_node`` is the cost of one tree node in one epoch (forward +
    backward), ``time_per_round`` is the latency of one inter-device
    communication round, and ``fixed_overhead`` covers the per-epoch work that
    trimming cannot remove (optimizer step, loss aggregation barrier).  The
    epoch ends when the slowest device finishes (synchronous protocol).
    """

    compute_per_node: float = 0.03
    time_per_round: float = 0.25
    fixed_overhead: float = 20.0

    def epoch_time(self, tree_sizes: np.ndarray, rounds_per_device: np.ndarray) -> float:
        """Simulated duration of one epoch (seconds)."""
        per_device = (
            tree_sizes.astype(np.float64) * self.compute_per_node
            + rounds_per_device.astype(np.float64) * self.time_per_round
        )
        return float(self.fixed_overhead + per_device.max()) if per_device.size else 0.0

    def steady_state_epoch_time(self, workloads: np.ndarray) -> float:
        """Epoch time implied by a workload distribution alone.

        Derives the structural quantities from the workloads — ``3*wl + 1``
        tree nodes (:func:`repro.core.tree.expected_tree_size`) and ``2*wl``
        communication rounds (one upload + one download per kept neighbour)
        — so the maintenance layer's :class:`StalenessMonitor` can price a
        maintained tree against a from-scratch reconstruction without
        materialising either's local graphs.
        """
        workloads = np.asarray(workloads, dtype=np.float64)
        tree_sizes = np.where(workloads > 0, 3.0 * workloads + 1.0, 1.0)
        return self.epoch_time(tree_sizes, 2.0 * workloads)


# --------------------------------------------------------------------------- #
# Training histories
# --------------------------------------------------------------------------- #
@dataclass
class SupervisedHistory:
    """Per-epoch record of a supervised training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    test_accuracy: float = 0.0
    best_val_accuracy: float = 0.0
    wall_clock_seconds: float = 0.0


@dataclass
class UnsupervisedHistory:
    """Per-epoch record of an unsupervised training run."""

    losses: List[float] = field(default_factory=list)
    val_auc: List[float] = field(default_factory=list)
    test_auc: float = 0.0
    best_val_auc: float = 0.0
    wall_clock_seconds: float = 0.0


# --------------------------------------------------------------------------- #
# Trainer
# --------------------------------------------------------------------------- #
class TreeBasedGNNTrainer:
    """Trains the Lumos model over a federated environment."""

    def __init__(
        self,
        environment: FederatedEnvironment,
        construction: TreeConstructionResult,
        initialization: EmbeddingInitializationResult,
        config: TrainerConfig,
        rng: Optional[np.random.Generator] = None,
        cost_model: Optional[EpochCostModel] = None,
        batch: Optional[TreeBatch] = None,
        faults: Optional[FaultScenarioConfig] = None,
    ) -> None:
        self.environment = environment
        self.construction = construction
        self.initialization = initialization
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng()
        self.cost_model = cost_model if cost_model is not None else EpochCostModel()
        # An empty scenario is normalised to None so the fault-free training
        # path is selected by a single ``is None`` check and stays
        # bit-identical to the pre-fault implementation.
        self.faults = faults if faults is not None and not faults.is_empty() else None
        #: Populated by :meth:`train_supervised`; under an empty plan it
        #: reports full participation.
        self.fault_stats: Optional[Dict[str, float]] = None
        self._fault_plans: Dict[int, FaultPlan] = {}
        self._fault_charge_cache: Dict[str, tuple] = {}

        sample_feature = next(iter(environment.devices.values())).ego.feature
        self.feature_dim = int(sample_feature.shape[0])
        # A pre-assembled union graph (e.g. the pipeline's cached tree_batch
        # artifact) can be injected; otherwise it is built here.
        self.batch = (
            batch
            if batch is not None
            else TreeBatch.build(environment, construction, initialization, self.feature_dim)
        )
        self._features = Tensor(self.batch.features)
        # The communication profile, tree sizes and per-epoch ledger charges
        # are static once the assignment is installed — computed once, reused
        # every epoch.
        self._tree_sizes: Optional[np.ndarray] = None
        self._profile_cache: Dict[str, Dict[str, np.ndarray]] = {}
        self._epoch_charge_cache: Dict[str, tuple] = {}

    # ------------------------------------------------------------------ #
    # System metrics
    # ------------------------------------------------------------------ #
    def _device_index(self) -> np.ndarray:
        """Sorted device ids; all per-device arrays are aligned to this order.

        Device ids are *not* assumed to be contiguous ``0..n-1``.
        """
        return np.asarray(self.environment.device_ids(), dtype=np.int64)

    def tree_sizes(self) -> np.ndarray:
        """Number of local-graph nodes per device (sorted device-id order)."""
        if self._tree_sizes is None:
            ids = self._device_index()
            self._tree_sizes = np.asarray(
                [self.batch.device_slices[int(d)][1] for d in ids], dtype=np.int64
            )
        return self._tree_sizes.copy()

    def communication_profile(self, task: str = "supervised") -> Dict[str, np.ndarray]:
        """Per-device inter-device communication rounds in one training epoch.

        A device ``u`` participates in one round per leaf-embedding it sends
        (``wl(u)``, one per selected neighbour), one per embedding it receives
        back (one for every device that kept ``u``), and one round of loss
        aggregation.  The unsupervised task additionally requests and receives
        negative-sample embeddings — as many as the device's original degree,
        independent of trimming (negatives are non-neighbours).

        All arrays are aligned to the sorted device-id order (also returned
        under ``"device_ids"``).
        """
        if task not in ("supervised", "unsupervised"):
            raise ValueError("task must be 'supervised' or 'unsupervised'")
        cached = self._profile_cache.get(task)
        if cached is not None:
            return {key: value.copy() for key, value in cached.items()}

        ids = self._device_index()
        num_devices = ids.shape[0]
        full_workloads = self.construction.assignment.workload_array()
        max_id = int(ids.max()) if num_devices else -1
        if full_workloads.shape[0] <= max_id:
            full_workloads = np.pad(
                full_workloads, (0, max_id + 1 - full_workloads.shape[0])
            )
        workloads = full_workloads[ids] if num_devices else full_workloads[:0]

        selected_sets = self.construction.assignment.selected.values()
        all_selected = (
            np.concatenate(
                [
                    np.fromiter(selected, dtype=np.int64, count=len(selected))
                    for selected in selected_sets
                ]
            )
            if any(len(s) for s in selected_sets)
            else np.zeros(0, dtype=np.int64)
        )
        incoming = np.bincount(
            np.searchsorted(ids, all_selected), minlength=num_devices
        ).astype(np.int64)

        rounds = workloads + incoming + 1
        if task == "unsupervised":
            degrees = np.asarray(
                [self.environment.devices[int(d)].degree for d in ids], dtype=np.int64
            )
            rounds = rounds + 2 * degrees
        profile = {
            "per_device_rounds": rounds,
            "workloads": workloads,
            "incoming": incoming,
            "device_ids": ids,
        }
        self._profile_cache[task] = profile
        # Hand out copies: the cached arrays feed later accounting and must
        # not be mutable through the returned dictionary.
        return {key: value.copy() for key, value in profile.items()}

    def simulated_epoch_time(self, task: str = "supervised") -> float:
        """Simulated wall-clock duration of one synchronous epoch (Fig. 8b)."""
        profile = self.communication_profile(task)
        return self.cost_model.epoch_time(self.tree_sizes(), profile["per_device_rounds"])

    def _charge_epoch(self, task: str) -> None:
        """Charge one epoch's communication and compute to the ledger (aggregated)."""
        cached = self._epoch_charge_cache.get(task)
        if cached is None:
            profile = self.communication_profile(task)
            total_rounds = int(profile["per_device_rounds"].sum())
            cached = (
                total_rounds * self.config.output_dim * 8,
                f"epoch-{task}-rounds:{total_rounds}",
                self._device_index(),
                self.tree_sizes().astype(np.float64),
            )
            self._epoch_charge_cache[task] = cached
        size_bytes, description, device_ids, costs = cached
        self.environment.ledger.send(
            sender=0,
            recipient=0,
            kind=MessageKind.EMBEDDING_EXCHANGE,
            size_bytes=size_bytes,
            description=description,
        )
        self.environment.ledger.compute_many(device_ids, costs, description="tree-gnn-epoch")
        self.environment.next_round()

    # ------------------------------------------------------------------ #
    # Fault injection (graceful degradation)
    # ------------------------------------------------------------------ #
    def _fault_plan(self, epochs: int) -> Optional[FaultPlan]:
        """Compile (and cache) the fault schedule for an ``epochs``-round run."""
        if self.faults is None:
            return None
        plan = self._fault_plans.get(epochs)
        if plan is None:
            plan = FaultPlan.compile(self.faults, self.environment.num_devices, epochs)
            self._fault_plans[epochs] = plan
        return plan

    def _charge_epoch_faulted(self, task: str, plan: FaultPlan, epoch: int) -> None:
        """Charge one degraded epoch: only online devices work and send.

        Dropped-out devices are charged nothing.  Evicted stragglers and
        lost updates *did* transmit, so their rounds stay in the charged
        total; the undelivered payload is additionally logged on the
        ledger's drop channel.
        """
        cached = self._fault_charge_cache.get(task)
        if cached is None:
            profile = self.communication_profile(task)
            cached = (
                profile["per_device_rounds"],
                self._device_index(),
                self.tree_sizes().astype(np.float64),
            )
            self._fault_charge_cache[task] = cached
        per_device_rounds, device_ids, costs = cached
        online = plan.online_mask(epoch)
        self.environment.set_availability(online)
        masked_rounds = per_device_rounds * online
        total_rounds = int(masked_rounds.sum())
        self.environment.ledger.send(
            sender=0,
            recipient=0,
            kind=MessageKind.EMBEDDING_EXCHANGE,
            size_bytes=total_rounds * self.config.output_dim * 8,
            description=f"epoch-{task}-rounds:{total_rounds}",
        )
        if online.any():
            self.environment.ledger.compute_many(
                device_ids[online], costs[online], description="tree-gnn-epoch"
            )
        undelivered = online & (plan.evicted_mask(epoch) | plan.lost_mask(epoch))
        undelivered_count = int(undelivered.sum())
        if undelivered_count:
            self.environment.ledger.drop(
                sender=0,
                recipient=0,
                kind=MessageKind.EMBEDDING_EXCHANGE,
                size_bytes=int(masked_rounds[undelivered].sum())
                * self.config.output_dim
                * 8,
                description=f"epoch-{task}-undelivered:{undelivered_count}",
            )
        self.environment.next_round()

    def _fault_epoch_times(self, plan: FaultPlan, task: str) -> np.ndarray:
        """Per-round simulated epoch durations under the fault schedule.

        Each round ends when the slowest *counted* device finishes: offline
        devices do not run, and evicted stragglers are past the deadline so
        the server stops waiting for them — which is exactly how a round
        deadline caps straggler damage.
        """
        profile = self.communication_profile(task)
        per_device = (
            self.tree_sizes().astype(np.float64) * self.cost_model.compute_per_node
            + profile["per_device_rounds"].astype(np.float64)
            * self.cost_model.time_per_round
        )
        counted = plan.online & ~plan.evicted
        effective = per_device[None, :] * plan.latency * counted
        if effective.size:
            round_max = effective.max(axis=1)
        else:
            round_max = np.zeros(plan.num_rounds, dtype=np.float64)
        return self.cost_model.fixed_overhead + round_max

    def _finalize_fault_stats(self, plan: Optional[FaultPlan], task: str, skipped_updates: int) -> None:
        if plan is None:
            self.fault_stats = {
                "mean_participation": 1.0,
                "offline_device_rounds": 0.0,
                "evicted_device_rounds": 0.0,
                "lost_update_rounds": 0.0,
                "mean_latency_multiplier": 1.0,
                "skipped_updates": 0.0,
                "mean_epoch_time": self.simulated_epoch_time(task),
            }
        else:
            times = self._fault_epoch_times(plan, task)
            stats = plan.summary()
            stats["skipped_updates"] = float(skipped_updates)
            stats["mean_epoch_time"] = (
                float(times.mean()) if times.size else self.cost_model.fixed_overhead
            )
            self.fault_stats = stats
            self.environment.set_availability(None)
        obs.set_gauge("trainer.mean_participation", self.fault_stats["mean_participation"])
        obs.add_counter("trainer.skipped_updates", self.fault_stats["skipped_updates"])
        obs.add_counter(
            "trainer.offline_device_rounds", self.fault_stats["offline_device_rounds"]
        )
        obs.add_counter(
            "trainer.evicted_device_rounds", self.fault_stats["evicted_device_rounds"]
        )
        obs.add_counter(
            "trainer.lost_update_rounds", self.fault_stats["lost_update_rounds"]
        )

    def _backend_context(self):
        """Context manager activating the configured trainer backend.

        ``"auto"`` inherits whatever backend is active at call time (so an
        outer :func:`use_backend` still governs the run); any other name
        switches for the duration of the training loop and restores the
        previous backend afterwards.
        """
        if self.config.backend == "auto":
            return nullcontext(get_backend())
        return use_backend(self.config.backend)

    # ------------------------------------------------------------------ #
    # Supervised training (node classification)
    # ------------------------------------------------------------------ #
    def train_supervised(
        self,
        labels: np.ndarray,
        split: NodeSplit,
        epochs: Optional[int] = None,
        log_every: int = 0,
    ) -> Tuple[LumosModel, SupervisedHistory]:
        """Train for node classification and return the model and its history."""
        with obs.span("trainer.train_supervised", epochs=epochs or self.config.epochs):
            with self._backend_context():
                return self._train_supervised_impl(labels, split, epochs, log_every)

    def _train_supervised_impl(
        self,
        labels: np.ndarray,
        split: NodeSplit,
        epochs: Optional[int],
        log_every: int,
    ) -> Tuple[LumosModel, SupervisedHistory]:
        labels = np.asarray(labels, dtype=np.int64)
        num_classes = int(labels.max()) + 1
        epochs = epochs if epochs is not None else self.config.epochs
        model = LumosModel(self.feature_dim, num_classes, self.config, rng=self.rng)
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        history = SupervisedHistory()
        best_state = None
        best_predictions: Optional[np.ndarray] = None
        start = time.perf_counter()

        plan = self._fault_plan(epochs)
        device_ids = self._device_index() if plan is not None else None
        skipped_updates = 0

        for epoch in range(epochs):
            model.train()
            logits = model.logits(self.batch, self._features)
            if plan is None:
                loss = cross_entropy(logits, labels, mask=split.train_mask)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                loss_value = loss.item()
            else:
                # Graceful degradation: only this round's participants
                # contribute training vertices.  ``cross_entropy`` divides
                # by the mask sum, so survivors are upweighted to keep the
                # gradient an unbiased average over present devices
                # (FedDropoutAvg-style participation reweighting).
                present_vertices = np.zeros(labels.shape[0], dtype=bool)
                present_vertices[device_ids[plan.participants(epoch)]] = True
                round_mask = np.logical_and(split.train_mask, present_vertices)
                if round_mask.any():
                    loss = cross_entropy(logits, labels, mask=round_mask)
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    loss_value = loss.item()
                else:
                    # No participant holds a training vertex this round: the
                    # server skips the update (the forward pass still ran on
                    # every online device).
                    optimizer.zero_grad()
                    loss_value = 0.0
                    skipped_updates += 1

            with no_grad():
                model.eval()
                eval_logits = model.logits(self.batch, self._features)
                predictions = np.argmax(eval_logits.data, axis=1)
            train_acc = float((predictions[split.train_mask] == labels[split.train_mask]).mean())
            val_acc = float((predictions[split.val_mask] == labels[split.val_mask]).mean())
            history.losses.append(loss_value)
            history.train_accuracy.append(train_acc)
            history.val_accuracy.append(val_acc)
            if val_acc >= history.best_val_accuracy:
                history.best_val_accuracy = val_acc
                best_state = model.state_dict()
                # Evaluation is deterministic, so the best epoch's predictions
                # are exactly what re-running the model on the best state
                # would produce — keep them and skip the final forward pass.
                best_predictions = predictions
            if plan is None:
                self._charge_epoch("supervised")
            else:
                self._charge_epoch_faulted("supervised", plan, epoch)
            if log_every and (epoch + 1) % log_every == 0:
                print(
                    f"[lumos supervised] epoch {epoch + 1}/{epochs} "
                    f"loss={loss_value:.4f} val_acc={val_acc:.4f}"
                )

        if best_state is not None:
            model.load_state_dict(best_state)
        if best_predictions is not None:
            final_predictions = best_predictions
        else:
            with no_grad():
                model.eval()
                final_logits = model.logits(self.batch, self._features)
                final_predictions = np.argmax(final_logits.data, axis=1)
        history.test_accuracy = float(
            (final_predictions[split.test_mask] == labels[split.test_mask]).mean()
        )
        history.wall_clock_seconds = time.perf_counter() - start
        self._finalize_fault_stats(plan, "supervised", skipped_updates)
        return model, history

    # ------------------------------------------------------------------ #
    # Unsupervised training (link prediction)
    # ------------------------------------------------------------------ #
    def train_unsupervised(
        self,
        edge_split: EdgeSplit,
        epochs: Optional[int] = None,
        log_every: int = 0,
    ) -> Tuple[LumosModel, UnsupervisedHistory]:
        """Train with the link-prediction objective of Eq. 33."""
        if self.faults is not None:
            raise ValueError(
                "fault injection currently supports the supervised task only; "
                "train_unsupervised requires an empty fault scenario"
            )
        with obs.span("trainer.train_unsupervised", epochs=epochs or self.config.epochs):
            with self._backend_context():
                return self._train_unsupervised_impl(edge_split, epochs, log_every)

    def _train_unsupervised_impl(
        self,
        edge_split: EdgeSplit,
        epochs: Optional[int],
        log_every: int,
    ) -> Tuple[LumosModel, UnsupervisedHistory]:
        epochs = epochs if epochs is not None else self.config.epochs
        model = LumosModel(self.feature_dim, None, self.config, rng=self.rng)
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        history = UnsupervisedHistory()
        best_state = None
        best_embeddings: Optional[np.ndarray] = None
        start = time.perf_counter()

        train_pairs = np.asarray(edge_split.train_edges, dtype=np.int64)
        edge_codes = self._encode_pairs(train_pairs)

        for epoch in range(epochs):
            model.train()
            embeddings = model.vertex_embeddings(self.batch, self._features)
            negatives = self._sample_negative_pairs(train_pairs, edge_codes)
            loss = link_prediction_loss(
                F.gather(embeddings, train_pairs[:, 0]),
                F.gather(embeddings, train_pairs[:, 1]),
                F.gather(embeddings, negatives[:, 1]),
            )
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

            with no_grad():
                model.eval()
                eval_embeddings = model.vertex_embeddings(self.batch, self._features)
            val_auc = roc_auc_from_embeddings(
                eval_embeddings.data, edge_split.val_edges, edge_split.val_negatives
            )
            history.losses.append(loss.item())
            history.val_auc.append(val_auc)
            if val_auc >= history.best_val_auc:
                history.best_val_auc = val_auc
                best_state = model.state_dict()
                # Evaluation embeddings are deterministic given the state —
                # reuse the best epoch's instead of a final forward pass.
                best_embeddings = eval_embeddings.data
            self._charge_epoch("unsupervised")
            if log_every and (epoch + 1) % log_every == 0:
                print(
                    f"[lumos unsupervised] epoch {epoch + 1}/{epochs} "
                    f"loss={loss.item():.4f} val_auc={val_auc:.4f}"
                )

        if best_state is not None:
            model.load_state_dict(best_state)
        if best_embeddings is None:
            with no_grad():
                model.eval()
                best_embeddings = model.vertex_embeddings(self.batch, self._features).data
        history.test_auc = roc_auc_from_embeddings(
            best_embeddings, edge_split.test_edges, edge_split.test_negatives
        )
        history.wall_clock_seconds = time.perf_counter() - start
        return model, history

    def _encode_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Sorted unique codes ``min * base + max`` of undirected vertex pairs."""
        base = max(self.environment.num_devices, int(pairs.max()) + 1 if pairs.size else 1)
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        return np.unique(lo * base + hi)

    def _sample_negative_pairs(self, positive_pairs: np.ndarray, edge_codes: np.ndarray) -> np.ndarray:
        """One negative ``(u, w)`` per positive ``(u, v)`` with ``(u, w)`` not an edge.

        Vectorised rejection sampling: every still-invalid row redraws its
        candidate, up to 20 rounds (after which the last candidate is kept,
        mirroring the bounded retry of the scalar sampler).  ``edge_codes``
        is the sorted pair encoding produced by :meth:`_encode_pairs`.
        """
        num_vertices = self.environment.num_devices
        base = max(num_vertices, int(positive_pairs.max()) + 1 if positive_pairs.size else 1)
        sources = positive_pairs[:, 0].astype(np.int64)
        candidates = np.empty(sources.shape[0], dtype=np.int64)
        pending = np.arange(sources.shape[0])
        for _ in range(20):
            if pending.size == 0:
                break
            draws = self.rng.integers(num_vertices, size=pending.shape[0])
            candidates[pending] = draws
            pending_sources = sources[pending]
            lo = np.minimum(pending_sources, draws)
            hi = np.maximum(pending_sources, draws)
            codes = lo * base + hi
            if edge_codes.size:
                positions = np.minimum(
                    np.searchsorted(edge_codes, codes), edge_codes.shape[0] - 1
                )
                is_edge = edge_codes[positions] == codes
            else:
                is_edge = np.zeros(codes.shape[0], dtype=bool)
            pending = pending[(draws == pending_sources) | is_edge]
        return np.stack([sources, candidates], axis=1)


# --------------------------------------------------------------------------- #
# Cross-sweep-point batched training
# --------------------------------------------------------------------------- #
def train_supervised_many(
    trainers: Sequence[TreeBasedGNNTrainer],
    labels: np.ndarray,
    split: NodeSplit,
    epochs: Optional[int] = None,
) -> List[Tuple[LumosModel, SupervisedHistory]]:
    """Train several sweep points through stacked backend calls.

    The trainers typically differ only in their privacy budget: sweep points
    share the union-graph structure and train the same architecture on
    slightly different feature matrices.  Their parameter sets are stacked
    along a leading point axis so every epoch runs as a handful of batched
    kernels (one multi-vector sparse product, slice-wise gemms) instead of
    one python-level training loop per point.

    The computation is bit-for-bit identical to calling each trainer's
    :meth:`TreeBasedGNNTrainer.train_supervised` in sequence: the same float
    operations execute in the same order within every point slice, each
    trainer's RNG stream is consumed identically (model init, then dropout
    draws in epoch order), and each environment's ledger receives the same
    transcript.  The benchmark harness asserts this equivalence.

    Falls back to the sequential loop whenever the batching preconditions do
    not hold (fewer than two points, non-GCN backbone, non-mean pooling,
    folding disabled, an unfused backend, heterogeneous configs, or batches
    that do not share their structure).
    """
    trainers = list(trainers)
    if not trainers:
        return []
    if not _can_batch_supervised(trainers):
        return [
            trainer.train_supervised(labels, split, epochs=epochs)
            for trainer in trainers
        ]
    with trainers[0]._backend_context():
        return _train_supervised_batched(trainers, labels, split, epochs)


def _can_batch_supervised(trainers: Sequence[TreeBasedGNNTrainer]) -> bool:
    """Whether the stacked training kernel applies to these trainers."""
    if len(trainers) < 2:
        return False
    # Fault-injected trainers take the per-epoch degradation path, which the
    # stacked kernel does not model — fall back to the sequential loop.
    if any(trainer.faults is not None for trainer in trainers):
        return False
    first = trainers[0].config
    for trainer in trainers[1:]:
        # Points may differ in their privacy budget only — epsilon affects
        # the feature matrices, which the stacked kernel handles per slice.
        if dataclasses.replace(trainer.config, epsilon=first.epsilon) != first:
            return False
    if first.backbone != "gcn" or first.pooling != "mean":
        return False
    if not first.fold_propagation or first.num_layers < 2:
        return False
    backend = (
        get_backend() if first.backend == "auto" else resolve_backend(first.backend)
    )
    if not backend.allow_fused:
        return False
    base = trainers[0].batch
    for trainer in trainers[1:]:
        # Identity of the adjacency pins a shared construction (the engine's
        # with_initialization re-binding); equal shapes alone are not enough.
        if trainer.batch.adjacency is not base.adjacency:
            return False
        if trainer.batch.features.shape != base.features.shape:
            return False
    return True


def _train_supervised_batched(
    trainers: Sequence[TreeBasedGNNTrainer],
    labels: np.ndarray,
    split: NodeSplit,
    epochs: Optional[int],
) -> List[Tuple[LumosModel, SupervisedHistory]]:
    labels = np.asarray(labels, dtype=np.int64)
    num_classes = int(labels.max()) + 1
    lead = trainers[0]
    config = lead.config
    epochs = epochs if epochs is not None else config.epochs
    backend = get_backend()
    num_points = len(trainers)
    start = time.perf_counter()

    # Per-point models built in point order from each trainer's own RNG —
    # exactly the draws the sequential loop would make.
    models = [
        LumosModel(trainer.feature_dim, num_classes, trainer.config, rng=trainer.rng)
        for trainer in trainers
    ]
    layer_names = models[0].encoder._layer_names
    num_layers = len(layer_names)

    def encoder_layer(model: LumosModel, index: int) -> GCNLayer:
        return model.encoder._modules[layer_names[index]]

    # Stack every parameter along a leading point axis.  Biases keep a
    # singleton row axis so broadcasting against (K, rows, dim) activations
    # unbroadcasts back to per-point bias gradients bit-for-bit.
    layer_weights = [
        Parameter(
            np.stack([encoder_layer(m, i).weight.data for m in models]),
            name=f"weight_{i}",
        )
        for i in range(num_layers)
    ]
    layer_biases = [
        Parameter(
            np.stack([encoder_layer(m, i).bias.data for m in models])[:, None, :],
            name=f"bias_{i}",
        )
        for i in range(num_layers)
    ]
    head_weight = Parameter(
        np.stack([m.head.weight.data for m in models]), name="head_weight"
    )
    head_bias = Parameter(
        np.stack([m.head.bias.data for m in models])[:, None, :], name="head_bias"
    )
    parameters = [*layer_weights, *layer_biases, head_weight, head_bias]
    optimizer = Adam(parameters, lr=config.learning_rate)

    batch = lead.batch
    adjacency = batch.adjacency
    folded = batch.folded_pool_adjacency()
    row_sums_vector = batch.pool_row_sums()
    row_sums = row_sums_vector.reshape(1, -1, 1)
    features_stack = np.stack([trainer.batch.features for trainer in trainers])
    # Â X is constant across epochs for every point — propagate once.  When
    # the union graph is dominated by all-zero virtual rows, keep the
    # compressed pair ``(Â_nz, X_nz)`` instead and run the slim kernels
    # ``Â_nz (X_nz W)`` per epoch; this mirrors GCNLayer._propagate_constant
    # so every point slice stays bit-identical to its sequential run (zero
    # rows are structural — shared across sweep points of one construction).
    nonzero = np.flatnonzero(features_stack.any(axis=(0, 2)))
    if nonzero.size <= (1.0 - _COMPRESS_ZERO_FRACTION) * features_stack.shape[1]:
        propagated = None
        compressed_matrix = backend.prepare_matrix(
            sp.csr_matrix(sp.csr_matrix(adjacency)[:, nonzero])
        )
        compressed_stack = np.ascontiguousarray(features_stack[:, nonzero, :])
    else:
        compressed_matrix = compressed_stack = None
        propagated = backend.spmm_many(adjacency, features_stack)

    keep_probability = 1.0 - config.dropout
    use_dropout = config.dropout > 0.0

    def draw_dropout_masks(shape) -> np.ndarray:
        return np.stack(
            [
                (trainer.rng.random(shape) < keep_probability) / keep_probability
                for trainer in trainers
            ]
        )

    weights_mask = split.train_mask.astype(np.float64)
    total_weight = max(weights_mask.sum(), 1.0)

    first_layer_cache: Optional[tuple] = None

    def first_layer_forward() -> Tensor:
        # Mirrors GCNLayer._propagate_constant: the evaluation pass at epoch
        # t sees the same parameter arrays as the gradient pass at t + 1, so
        # evaluate() stores its layer output here for reuse.
        nonlocal first_layer_cache
        weight, bias = layer_weights[0], layer_biases[0]
        entry = first_layer_cache
        if entry is None or entry[0] is not weight.data or entry[1] is not bias.data:
            if propagated is not None:
                value = propagated @ weight.data + bias.data
            else:
                value = (
                    backend.spmm_many(
                        compressed_matrix, compressed_stack @ weight.data
                    )
                    + bias.data
                )
            mask = (value > 0).astype(np.float64)
            value = value * mask
            entry = (weight.data, bias.data, value, mask)
            first_layer_cache = entry
        value, mask = entry[2], entry[3]

        def backward(grad: np.ndarray) -> None:
            grad = _as_array(grad) * mask
            if propagated is not None:
                weight._accumulate(np.swapaxes(propagated, -1, -2) @ grad)
            else:
                weight._accumulate(
                    np.swapaxes(compressed_stack, -1, -2)
                    @ backend.spmm_t_many(compressed_matrix, grad)
                )
            bias._accumulate(grad)

        return Tensor._make(value, (weight, bias), backward)

    def folded_head_forward(hidden: Tensor) -> Tensor:
        # Stacked mirror of F.fused_folded_head: slice k runs the same float
        # operations as the 2-D node on point k (1-D gemv sub-products loop
        # over the small point axis so the BLAS calls match shape for shape).
        final_weight, final_bias = layer_weights[-1], layer_biases[-1]
        combined = final_weight.data @ head_weight.data
        support = hidden.data @ combined
        pooled = backend.spmm_many(folded, support)
        combined_bias = np.stack(
            [
                final_bias.data[k, 0] @ head_weight.data[k]
                for k in range(num_points)
            ]
        )[:, None, :]
        value = (
            pooled + row_sums * combined_bias + head_bias.data
        )

        def backward(grad: np.ndarray) -> None:
            g = _as_array(grad)
            head_bias._accumulate(g)
            row_grad = np.stack(
                [row_sums_vector @ g[k] for k in range(num_points)]
            )
            scattered = backend.spmm_t_many(folded, g)
            projected = np.swapaxes(hidden.data, -1, -2) @ scattered
            head_weight._accumulate(
                np.swapaxes(final_weight.data, -1, -2) @ projected
                + np.swapaxes(final_bias.data, -1, -2) * row_grad[:, None, :]
            )
            final_weight._accumulate(
                projected @ np.swapaxes(head_weight.data, -1, -2)
            )
            final_bias._accumulate(
                np.stack(
                    [
                        row_grad[k] @ head_weight.data[k].T
                        for k in range(num_points)
                    ]
                )[:, None, :]
            )
            hidden._accumulate(scattered @ np.swapaxes(combined, -1, -2))

        parents = (hidden, final_weight, final_bias, head_weight, head_bias)
        return Tensor._make(value, parents, backward)

    def forward_train() -> Tensor:
        hidden = first_layer_forward()
        if use_dropout:
            hidden = hidden * Tensor(draw_dropout_masks(hidden.data.shape[1:]))
        for index in range(1, num_layers - 1):
            z = F.sparse_matmul_many(adjacency, hidden @ layer_weights[index])
            hidden = (z + layer_biases[index]).relu()
            if use_dropout:
                hidden = hidden * Tensor(draw_dropout_masks(hidden.data.shape[1:]))
        return folded_head_forward(hidden)

    def evaluate() -> np.ndarray:
        nonlocal first_layer_cache
        weight, bias = layer_weights[0], layer_biases[0]
        if propagated is not None:
            value = propagated @ weight.data + bias.data
        else:
            value = (
                backend.spmm_many(compressed_matrix, compressed_stack @ weight.data)
                + bias.data
            )
        mask = (value > 0).astype(np.float64)
        hidden = value * mask
        first_layer_cache = (weight.data, bias.data, hidden, mask)
        for index in range(1, num_layers - 1):
            z = backend.spmm_many(adjacency, hidden)
            z = z @ layer_weights[index].data + layer_biases[index].data
            relu_mask = (z > 0).astype(np.float64)
            hidden = z * relu_mask
        combined = layer_weights[-1].data @ head_weight.data
        pooled = backend.spmm_many(folded, hidden @ combined)
        combined_bias = np.stack(
            [
                layer_biases[-1].data[k, 0] @ head_weight.data[k]
                for k in range(num_points)
            ]
        )[:, None, :]
        eval_logits = pooled + row_sums * combined_bias + head_bias.data
        return np.argmax(eval_logits, axis=-1)

    histories = [SupervisedHistory() for _ in trainers]
    best_snapshots: List[Optional[dict]] = [None] * num_points
    best_predictions: List[Optional[np.ndarray]] = [None] * num_points

    def snapshot(point: int) -> dict:
        return {
            "weights": [w.data[point].copy() for w in layer_weights],
            "biases": [b.data[point, 0].copy() for b in layer_biases],
            "head_weight": head_weight.data[point].copy(),
            "head_bias": head_bias.data[point, 0].copy(),
        }

    for _ in range(epochs):
        logits = forward_train()
        # Same single-node loss as the sequential path (slice k of the
        # stacked call is bit-identical to the 2-D call on point k).
        loss_vector = F.fused_masked_cross_entropy(
            logits, labels, weights_mask, total_weight
        )
        objective = loss_vector.sum()
        optimizer.zero_grad()
        objective.backward()
        optimizer.step()

        predictions = evaluate()
        for point, trainer in enumerate(trainers):
            point_predictions = predictions[point]
            train_acc = float(
                (point_predictions[split.train_mask] == labels[split.train_mask]).mean()
            )
            val_acc = float(
                (point_predictions[split.val_mask] == labels[split.val_mask]).mean()
            )
            history = histories[point]
            history.losses.append(float(loss_vector.data[point]))
            history.train_accuracy.append(train_acc)
            history.val_accuracy.append(val_acc)
            if val_acc >= history.best_val_accuracy:
                history.best_val_accuracy = val_acc
                best_snapshots[point] = snapshot(point)
                best_predictions[point] = point_predictions
            trainer._charge_epoch("supervised")

    if epochs <= 0:
        predictions = evaluate()
        for point in range(num_points):
            best_predictions[point] = predictions[point]

    elapsed = time.perf_counter() - start
    results: List[Tuple[LumosModel, SupervisedHistory]] = []
    for point, model in enumerate(models):
        state = best_snapshots[point]
        if state is None:
            state = snapshot(point)
        for index in range(num_layers):
            layer = encoder_layer(model, index)
            layer.weight.data = state["weights"][index]
            layer.bias.data = state["biases"][index]
        model.head.weight.data = state["head_weight"]
        model.head.bias.data = state["head_bias"]
        history = histories[point]
        history.test_accuracy = float(
            (best_predictions[point][split.test_mask] == labels[split.test_mask]).mean()
        )
        history.wall_clock_seconds = elapsed
        results.append((model, history))
    return results


def roc_auc_from_embeddings(
    embeddings: np.ndarray, positive_edges: np.ndarray, negative_edges: np.ndarray
) -> float:
    """ROC-AUC of inner-product scores on positive vs negative vertex pairs."""
    from ..eval.metrics import roc_auc_score

    positive_edges = np.asarray(positive_edges, dtype=np.int64)
    negative_edges = np.asarray(negative_edges, dtype=np.int64)
    positive_scores = np.sum(
        embeddings[positive_edges[:, 0]] * embeddings[positive_edges[:, 1]], axis=1
    )
    negative_scores = np.sum(
        embeddings[negative_edges[:, 0]] * embeddings[negative_edges[:, 1]], axis=1
    )
    scores = np.concatenate([positive_scores, negative_scores])
    targets = np.concatenate([np.ones(len(positive_scores)), np.zeros(len(negative_scores))])
    return roc_auc_score(targets, scores)
