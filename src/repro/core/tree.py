"""Tree construction from ego networks (paper Section V-A).

For a device ``u`` with selected neighbours ``N_u = {v_1, ..., v_w}`` the
constructed tree ``T(u)`` is:

* ``w`` **leaf pairs** ``(u, v_k)`` — the centre vertex ``u`` is replicated
  once per pair so that its (only non-noised) feature is used more often;
* one virtual **parent node** ``P_k`` joining each leaf pair — it represents
  the two-vertex subgraph ``{u, v_k}`` plus the edge between them;
* one virtual **root node** ``R`` whose children are all parent nodes — it
  represents the whole ego network.

The ablation "Lumos w.o. VN" skips the virtual nodes and uses the plain ego
star (centre connected to each selected neighbour) as the local graph; both
variants implement the same :class:`LocalGraph` interface so the trainer does
not care which one it gets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class NodeRole(Enum):
    """Role of a node inside a local (per-device) graph."""

    CENTER_LEAF = "center_leaf"
    NEIGHBOR_LEAF = "neighbor_leaf"
    PARENT = "parent"
    ROOT = "root"
    CENTER = "center"  # used by the star (no-virtual-node) variant


@dataclass(frozen=True)
class LocalNode:
    """One node of a local graph.

    ``vertex`` is the global vertex id the node refers to, or ``None`` for
    virtual nodes.
    """

    local_id: int
    role: NodeRole
    vertex: Optional[int]


@dataclass
class LocalGraph:
    """The per-device graph (tree or star) the GNN trainer operates on."""

    owner: int
    nodes: List[LocalNode]
    edges: List[Tuple[int, int]]

    def __post_init__(self) -> None:
        ids = [node.local_id for node in self.nodes]
        if ids != list(range(len(self.nodes))):
            raise ValueError("local node ids must be consecutive starting at 0")
        for u, v in self.edges:
            if not (0 <= u < len(self.nodes) and 0 <= v < len(self.nodes)):
                raise ValueError("edge endpoint out of range")
            if u == v:
                raise ValueError("self loops are not allowed in local graphs")

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def leaves(self) -> List[LocalNode]:
        """All nodes that refer to a global vertex (leaf pairs or star nodes)."""
        return [node for node in self.nodes if node.vertex is not None]

    def nodes_for_vertex(self, vertex: int) -> List[LocalNode]:
        """All local nodes referring to global ``vertex``."""
        return [node for node in self.nodes if node.vertex == vertex]

    def neighbor_vertices(self) -> List[int]:
        """Global ids of the neighbour vertices present in this local graph."""
        return sorted(
            {node.vertex for node in self.nodes if node.role is NodeRole.NEIGHBOR_LEAF}
        )

    def depth(self) -> int:
        """Longest path (in edges) from the structural root to any node.

        For the virtual-node tree this is 2 (root -> parent -> leaf); for the
        star it is 1; degenerate graphs return 0.
        """
        if not self.edges:
            return 0
        adjacency: Dict[int, List[int]] = {node.local_id: [] for node in self.nodes}
        for u, v in self.edges:
            adjacency[u].append(v)
            adjacency[v].append(u)
        root_candidates = [n.local_id for n in self.nodes if n.role in (NodeRole.ROOT, NodeRole.CENTER)]
        root = root_candidates[0] if root_candidates else 0
        # BFS from the root.
        depth = {root: 0}
        frontier = [root]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if neighbor not in depth:
                        depth[neighbor] = depth[node] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return max(depth.values())

    def is_tree(self) -> bool:
        """Whether the local graph is connected and acyclic."""
        if self.num_nodes == 0:
            return True
        if self.num_edges != self.num_nodes - 1:
            return False
        # Connectivity check via union-find.
        parent = list(range(self.num_nodes))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in self.edges:
            parent[find(u)] = find(v)
        roots = {find(x) for x in range(self.num_nodes)}
        return len(roots) == 1


def build_tree(owner: int, selected_neighbors: Sequence[int]) -> LocalGraph:
    """Build the Lumos tree ``T(owner)`` from the selected neighbour list.

    The layout (Fig. 2 of the paper): one root, one parent per leaf pair,
    one centre-leaf replica and one neighbour leaf per pair.  A device whose
    selection is empty still gets a one-node graph (its own centre leaf) so
    its own feature participates in pooling.
    """
    neighbors = [int(v) for v in selected_neighbors]
    nodes: List[LocalNode] = []
    edges: List[Tuple[int, int]] = []

    if not neighbors:
        nodes.append(LocalNode(local_id=0, role=NodeRole.CENTER_LEAF, vertex=owner))
        return LocalGraph(owner=owner, nodes=nodes, edges=edges)

    root_id = 0
    nodes.append(LocalNode(local_id=root_id, role=NodeRole.ROOT, vertex=None))
    next_id = 1
    for neighbor in neighbors:
        parent_id = next_id
        center_id = next_id + 1
        leaf_id = next_id + 2
        next_id += 3
        nodes.append(LocalNode(local_id=parent_id, role=NodeRole.PARENT, vertex=None))
        nodes.append(LocalNode(local_id=center_id, role=NodeRole.CENTER_LEAF, vertex=owner))
        nodes.append(LocalNode(local_id=leaf_id, role=NodeRole.NEIGHBOR_LEAF, vertex=neighbor))
        edges.append((root_id, parent_id))
        edges.append((parent_id, center_id))
        edges.append((parent_id, leaf_id))
    return LocalGraph(owner=owner, nodes=nodes, edges=edges)


def build_star(owner: int, selected_neighbors: Sequence[int]) -> LocalGraph:
    """Build the plain ego star used by the "Lumos w.o. VN" ablation.

    The centre vertex is connected directly to each selected neighbour; there
    are no virtual nodes and no centre replication.
    """
    neighbors = [int(v) for v in selected_neighbors]
    nodes: List[LocalNode] = [LocalNode(local_id=0, role=NodeRole.CENTER, vertex=owner)]
    edges: List[Tuple[int, int]] = []
    for offset, neighbor in enumerate(neighbors, start=1):
        nodes.append(LocalNode(local_id=offset, role=NodeRole.NEIGHBOR_LEAF, vertex=neighbor))
        edges.append((0, offset))
    return LocalGraph(owner=owner, nodes=nodes, edges=edges)


def expected_tree_size(workload: int) -> int:
    """Number of nodes of a Lumos tree for a given workload (3*wl + 1)."""
    if workload < 0:
        raise ValueError("workload must be non-negative")
    return 1 if workload == 0 else 3 * workload + 1


def count_leaves(local_graph: LocalGraph) -> int:
    """Number of leaf nodes referring to real vertices (2 * workload for trees)."""
    return len(local_graph.leaves()) - (
        1 if any(node.role is NodeRole.CENTER for node in local_graph.nodes) else 0
    )
