"""Heterogeneity-aware tree constructor (paper Section V).

Orchestrates the full pipeline:

1. start from the untrimmed assignment (every device keeps every neighbour);
2. if tree trimming is enabled, run the greedy initialisation (Alg. 1) and
   the MCMC iteration (Alg. 2) to balance workloads;
3. build the per-device local graph — the virtual-node tree of Section V-A,
   or the plain ego star for the "Lumos w.o. VN" ablation.

The result bundles the final assignment, the local graphs, the balancing
history and the secure-comparison transcript so that the evaluation harness
can report both accuracy-side and system-side metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..crypto.oblivious_transfer import TranscriptAccountant
from ..federation.simulator import FederatedEnvironment
from .config import TreeConstructorConfig
from .greedy import greedy_initialization
from .mcmc import MCMCBalancer, MCMCResult
from .tree import LocalGraph, build_star, build_tree
from .workload import Assignment


@dataclass
class TreeConstructionResult:
    """Everything the tree constructor produces."""

    assignment: Assignment
    local_graphs: Dict[int, LocalGraph]
    greedy_assignment: Optional[Assignment] = None
    mcmc_result: Optional[MCMCResult] = None
    transcript: TranscriptAccountant = field(default_factory=TranscriptAccountant)
    used_virtual_nodes: bool = True
    used_tree_trimming: bool = True
    # True when local_graphs follow the canonical build_tree / build_star
    # layout over the *sorted* selected-neighbour lists (set by
    # TreeConstructor).  Hand-assembled results leave it False, which routes
    # TreeBatch.build to the generic per-node path.
    canonical_layout: bool = False

    def workload_array(self) -> np.ndarray:
        """Per-device workloads of the final assignment."""
        return self.assignment.workload_array()

    def max_workload(self) -> int:
        """The final objective value ``f(X)``."""
        return self.assignment.objective()

    def total_tree_nodes(self) -> int:
        """Total number of local-graph nodes across all devices."""
        return sum(graph.num_nodes for graph in self.local_graphs.values())


class TreeConstructor:
    """Builds balanced per-device trees for a federated environment."""

    def __init__(
        self,
        config: TreeConstructorConfig = TreeConstructorConfig(),
        rng: Optional[np.random.Generator] = None,
        secure: bool = False,
        mcmc_kernel: str = "auto",
        greedy_kernel: Optional[str] = None,
    ) -> None:
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng()
        self.secure = secure
        self.mcmc_kernel = mcmc_kernel
        # None defers to the (fingerprinted) config knobs: ``greedy_kernel``
        # in clear mode, ``secure_kernel`` in secure mode (where "auto"
        # resolves to the batched vectorized-OT kernels — bit-for-bit
        # equivalent to the reference protocol loops, pinned by
        # tests/test_secure_batched.py).
        self.greedy_kernel = greedy_kernel

    def _resolve_greedy_kernel(self) -> str:
        if self.secure:
            secure_kernel = self.config.secure_kernel
            return "batched" if secure_kernel == "auto" else secure_kernel
        return self.greedy_kernel if self.greedy_kernel is not None else self.config.greedy_kernel

    def _resolve_mcmc_kernel(self) -> str:
        if self.secure:
            # "batched" maps onto the incremental kernel's vectorised secure
            # Alg. 3 path; "auto" lets the balancer fall back to the
            # reference loop where the incremental kernel does not apply
            # (non-contiguous device ids).
            return {"auto": "auto", "batched": "incremental", "reference": "reference"}[
                self.config.secure_kernel
            ]
        return self.mcmc_kernel

    def construct(self, environment: FederatedEnvironment) -> TreeConstructionResult:
        """Run the constructor over ``environment`` and install the assignment."""
        transcript = TranscriptAccountant()

        full = Assignment.from_lists(
            {
                device_id: [int(v) for v in device.ego.neighbors]
                for device_id, device in environment.devices.items()
            }
        )

        greedy_assignment: Optional[Assignment] = None
        mcmc_result: Optional[MCMCResult] = None
        if self.config.use_tree_trimming:
            greedy_assignment = greedy_initialization(
                environment,
                accountant=transcript,
                bit_width=self.config.degree_comparison_bits,
                rng=self.rng,
                kernel=self._resolve_greedy_kernel(),
                secure=self.secure,
            )
            balancer = MCMCBalancer(
                environment,
                iterations=self.config.mcmc_iterations,
                accountant=transcript,
                bit_width=self.config.workload_comparison_bits,
                secure=self.secure,
                rng=self.rng,
                kernel=self._resolve_mcmc_kernel(),
            )
            mcmc_result = balancer.run(greedy_assignment)
            assignment = mcmc_result.assignment
        else:
            assignment = full

        environment.apply_assignment(assignment.as_lists())

        local_graphs: Dict[int, LocalGraph] = {}
        for device_id, device in environment.devices.items():
            selected = sorted(assignment.selected.get(device_id, set()))
            if self.config.use_virtual_nodes:
                local_graphs[device_id] = build_tree(device_id, selected)
            else:
                local_graphs[device_id] = build_star(device_id, selected)
            # Charge the (local, cheap) tree-building computation.
            environment.charge_compute(
                device_id, cost=float(len(selected)), description="tree-construction"
            )

        return TreeConstructionResult(
            assignment=assignment,
            local_graphs=local_graphs,
            greedy_assignment=greedy_assignment,
            mcmc_result=mcmc_result,
            transcript=transcript,
            used_virtual_nodes=self.config.use_virtual_nodes,
            used_tree_trimming=self.config.use_tree_trimming,
            canonical_layout=True,
        )
