"""Configuration objects for the Lumos system.

Defaults follow Section VIII-B of the paper: 2 GNN layers, hidden/output
dimension 16, dropout 0.01, 4 attention heads for GAT, Adam with learning
rate 0.01, privacy budget ``epsilon = 2``, 300 training epochs, and 1,000 /
300 MCMC iterations for the Facebook / LastFM graphs (exposed here as a
single tunable).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..faults.config import FaultScenarioConfig

#: Alg. 1 kernel selection values (defined here, on the dependency-free
#: config leaf; :mod:`repro.core.greedy` imports them).
GREEDY_KERNELS = ("auto", "batched", "reference")

#: Secure-construction kernel selection values (``"auto"`` resolves to the
#: batched vectorized-OT kernels; ``"reference"`` keeps the per-comparison
#: protocol loops).  Selects both the secure greedy kernel and the secure
#: MCMC kernel of :class:`~repro.core.constructor.TreeConstructor`.
SECURE_KERNELS = ("auto", "batched", "reference")

#: Executor selection values of the parallel runtime (:mod:`repro.runtime`).
EXECUTORS = ("serial", "process")

#: Trainer compute-backend selection values.  ``"auto"`` inherits whatever
#: backend is active when training starts (the fast numpy backend by
#: default); any other value must name a registered
#: :mod:`repro.nn.backend` backend — including optional ones like
#: ``"torch"`` — and the trainer switches to it for the duration of the run.
#: Validated lazily against the registry so configs stay importable without
#: optional extras installed.
TRAINER_BACKENDS = ("auto", "numpy", "reference", "dense", "torch")


@dataclass(frozen=True)
class RuntimeConfig:
    """How independent work items of an experiment are scheduled.

    These knobs select *where* work runs (in-process or across a worker
    pool), never *what* it computes: the runtime's determinism contract is
    that results are bit-for-bit identical for every executor, so this
    section deliberately does **not** participate in any stage or work-item
    fingerprint (a cached artifact produced under ``executor="process"`` is
    interchangeable with one produced serially — pinned by
    ``tests/test_runtime_executor.py``).
    """

    executor: str = "serial"
    #: Worker-pool size; ``None`` resolves to ``os.cpu_count()`` (capped by
    #: the number of scheduled items).
    max_workers: Optional[int] = None
    #: How often a crashed or timed-out work item is re-dispatched before it
    #: is reported as failed.  Items are never silently dropped.
    retries: int = 1
    #: Per-item wall-clock budget; a worker exceeding it is killed and its
    #: item retried.  ``None`` disables the timeout.
    timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError("max_workers must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")


@dataclass(frozen=True)
class TreeConstructorConfig:
    """Hyper-parameters of the heterogeneity-aware tree constructor."""

    use_virtual_nodes: bool = True
    use_tree_trimming: bool = True
    mcmc_iterations: int = 300
    degree_comparison_bits: int = 8
    workload_comparison_bits: int = 24
    # Alg. 1 kernel for clear construction ("auto" resolves to the batched
    # kernel).  Part of the frozen config so the engine's construction
    # fingerprint distinguishes kernels and cached artifacts never mix RNG
    # stream contracts.
    greedy_kernel: str = "auto"
    # Kernel used when the constructor runs in secure mode ("auto" resolves
    # to the batched vectorized-OT kernels for both greedy initialisation
    # and MCMC balancing; "reference" keeps the per-comparison protocol
    # loops).  Fingerprinted for the same reason as ``greedy_kernel``.
    secure_kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.mcmc_iterations < 0:
            raise ValueError("mcmc_iterations must be non-negative")
        if self.greedy_kernel not in GREEDY_KERNELS:
            raise ValueError(
                f"greedy_kernel must be one of {GREEDY_KERNELS}, "
                f"got {self.greedy_kernel!r}"
            )
        if self.secure_kernel not in SECURE_KERNELS:
            raise ValueError(
                f"secure_kernel must be one of {SECURE_KERNELS}, "
                f"got {self.secure_kernel!r}"
            )


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of the tree-based GNN trainer."""

    backbone: str = "gcn"
    num_layers: int = 2
    hidden_dim: int = 16
    output_dim: int = 16
    dropout: float = 0.01
    num_heads: int = 4
    learning_rate: float = 0.01
    epochs: int = 300
    epsilon: float = 2.0
    pooling: str = "mean"
    negative_samples_per_edge: int = 1
    # Compute backend the trainer runs under ("auto" inherits the active
    # backend).  Part of the frozen config so the engine's tree-batch
    # fingerprint distinguishes backends and cached artifacts (which carry
    # backend-prepared operators) never mix backends.
    backend: str = "auto"
    # Whether the final GCN layer's propagation may be folded with the
    # mean-pool operator into one precomputed matrix per tree batch
    # (``fold_chain``).  Only engages on fused backends with a GCN backbone
    # and mean pooling; the benchmark harness toggles it to measure the
    # folded-vs-unfolded speedup.
    fold_propagation: bool = True

    def __post_init__(self) -> None:
        if self.backbone not in ("gcn", "gat"):
            raise ValueError(f"unknown backbone '{self.backbone}'")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.backend not in TRAINER_BACKENDS:
            raise ValueError(
                f"backend must be one of {TRAINER_BACKENDS}, got {self.backend!r}"
            )


@dataclass(frozen=True)
class LumosConfig:
    """End-to-end configuration of a Lumos deployment."""

    constructor: TreeConstructorConfig = field(default_factory=TreeConstructorConfig)
    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    seed: int = 0
    #: Scheduling knobs only — excluded from every content fingerprint (see
    #: :class:`RuntimeConfig`): two configs differing only here are the same
    #: experiment.
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: Fault-injection scenario applied at training time.  Empty by default;
    #: a non-empty scenario enters the work-item fingerprint (so cached
    #: artifacts never mix scenarios) while the pipeline *stage* keys stay
    #: untouched — every scenario of a sweep shares the partition /
    #: construction / tree-batch prefix.
    faults: FaultScenarioConfig = field(default_factory=FaultScenarioConfig)

    # ------------------------------------------------------------------ #
    # Convenience constructors used heavily by the evaluation harness
    # ------------------------------------------------------------------ #
    def with_backbone(self, backbone: str) -> "LumosConfig":
        """Return a copy using the given GNN backbone ('gcn' or 'gat')."""
        return replace(self, trainer=replace(self.trainer, backbone=backbone))

    def with_epsilon(self, epsilon: float) -> "LumosConfig":
        """Return a copy with a different privacy budget."""
        return replace(self, trainer=replace(self.trainer, epsilon=epsilon))

    def with_epochs(self, epochs: int) -> "LumosConfig":
        """Return a copy with a different number of training epochs."""
        return replace(self, trainer=replace(self.trainer, epochs=epochs))

    def with_mcmc_iterations(self, iterations: int) -> "LumosConfig":
        """Return a copy with a different MCMC iteration budget."""
        return replace(self, constructor=replace(self.constructor, mcmc_iterations=iterations))

    def without_virtual_nodes(self) -> "LumosConfig":
        """Ablation: Lumos w.o. VN (ego network fed directly to the trainer)."""
        return replace(self, constructor=replace(self.constructor, use_virtual_nodes=False))

    def without_tree_trimming(self) -> "LumosConfig":
        """Ablation: Lumos w.o. TT (all neighbours kept, no balancing)."""
        return replace(self, constructor=replace(self.constructor, use_tree_trimming=False))

    def with_seed(self, seed: int) -> "LumosConfig":
        """Return a copy with a different random seed."""
        return replace(self, seed=seed)

    def with_trainer_backend(self, backend: str) -> "LumosConfig":
        """Return a copy training under the named compute backend."""
        return replace(self, trainer=replace(self.trainer, backend=backend))

    def without_propagation_folding(self) -> "LumosConfig":
        """Return a copy with pool/adjacency matmul folding disabled."""
        return replace(self, trainer=replace(self.trainer, fold_propagation=False))

    def with_runtime(self, **kwargs) -> "LumosConfig":
        """Return a copy with updated :class:`RuntimeConfig` fields."""
        return replace(self, runtime=replace(self.runtime, **kwargs))

    def with_executor(self, executor: str, max_workers: Optional[int] = None) -> "LumosConfig":
        """Return a copy recording an executor preference (results unchanged).

        The preference is consumed by passing ``config.runtime`` to any
        scheduling surface — ``run_*(..., executor=config.runtime)`` or
        :func:`repro.runtime.resolve_executor` — and never changes what a
        single :class:`~repro.core.lumos.LumosSystem` computes.
        """
        return self.with_runtime(executor=executor, max_workers=max_workers)

    def with_faults(self, faults: FaultScenarioConfig) -> "LumosConfig":
        """Return a copy training under the given fault scenario."""
        return replace(self, faults=faults)


def default_config_for(dataset_name: str) -> LumosConfig:
    """Return the paper's per-dataset defaults (MCMC iterations differ)."""
    name = dataset_name.lower()
    mcmc = 1000 if "facebook" in name else 300
    return LumosConfig(constructor=TreeConstructorConfig(mcmc_iterations=mcmc))
