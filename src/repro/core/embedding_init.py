"""LDP embedding initialisation (paper Section VI-A).

Before training starts every device must make its feature available to the
neighbouring devices whose trees contain it as a leaf — but raw features are
private.  The initialisation therefore:

1. encodes the feature with the 1-bit mechanism, using the per-element budget
   ``eps * wl(u) / d`` (Eq. 26);
2. randomly distributes the ``d`` elements into ``wl(u)`` bins and sends the
   ``k``-th bin (other elements replaced by the neutral symbol 0.5) to the
   ``k``-th requesting neighbour — under composability the total release
   still satisfies ``eps``-LDP (Theorem 4);
3. each receiver applies the unbiased recovery of Eq. 27 and stores the
   result as the initial embedding of the corresponding neighbour leaf.

The releasing device's *own* centre leaves keep the raw (non-noised) feature:
that data never leaves the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..crypto.ldp import FeatureBinPartitioner, FeatureBounds, OneBitMechanism
from ..federation.events import MessageKind
from ..federation.simulator import FederatedEnvironment
from .workload import Assignment


@dataclass
class EmbeddingInitializationResult:
    """Outcome of the feature-exchange phase."""

    received_features: Dict[int, Dict[int, np.ndarray]]
    messages_sent: int = 0
    bytes_sent: int = 0
    epsilon: float = 0.0

    def feature_for(self, receiver: int, sender: int) -> np.ndarray:
        """Recovered feature of ``sender`` as seen by ``receiver``."""
        return self.received_features[receiver][sender]


class LDPEmbeddingInitializer:
    """Runs the feature exchange of Section VI-A over an environment."""

    def __init__(
        self,
        epsilon: float,
        bounds: FeatureBounds = FeatureBounds(),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = float(epsilon)
        self.bounds = bounds
        self.rng = rng if rng is not None else np.random.default_rng()
        self.mechanism = OneBitMechanism(epsilon=self.epsilon, bounds=bounds)

    def run(
        self,
        environment: FederatedEnvironment,
        assignment: Assignment,
    ) -> EmbeddingInitializationResult:
        """Execute the exchange and return every receiver's recovered features.

        ``assignment`` determines both the sender's workload ``wl(u)`` (its
        per-element budget and bin count) and who needs whose feature: device
        ``r`` needs the feature of ``s`` exactly when ``s`` is a selected
        neighbour of ``r`` (``s`` appears as a leaf in ``T(r)``).
        """
        received: Dict[int, Dict[int, np.ndarray]] = {
            device_id: {} for device_id in environment.devices
        }
        messages = 0
        total_bytes = 0

        # Who requests my feature?  r requests s when s in N_r.
        requesters: Dict[int, List[int]] = {device_id: [] for device_id in environment.devices}
        for receiver, selected in assignment.selected.items():
            for sender in selected:
                requesters[int(sender)].append(int(receiver))

        for sender_id, receiver_ids in requesters.items():
            sender_device = environment.devices[sender_id]
            feature = sender_device.ego.feature
            dimension = feature.shape[0]
            # The sender's workload controls the privacy split; devices whose
            # selection ended up empty (possible after trimming) fall back to
            # a single bin so their feature can still be released once.
            workload = max(assignment.workload(sender_id), 1)
            partitioner = FeatureBinPartitioner(dimension, workload, rng=self.rng)

            for rank, receiver_id in enumerate(sorted(receiver_ids)):
                bin_mask = partitioner.mask_for_bin(rank % workload)
                encoded = self.mechanism.encode(
                    feature, workload=workload, dimension=dimension,
                    selected=bin_mask, rng=self.rng,
                )
                recovered = self.mechanism.recover(encoded, workload=workload, dimension=dimension)
                received[receiver_id][sender_id] = recovered
                environment.devices[receiver_id].store_received_feature(sender_id, recovered)

                # Encoded symbols need 2 bits each ({0, 0.5, 1}); account the
                # transmission of the full d-dimensional message.
                size_bytes = max(1, (2 * dimension) // 8)
                environment.exchange(
                    sender_id, receiver_id, MessageKind.FEATURE_EXCHANGE, size_bytes,
                    description="ldp-feature",
                )
                messages += 1
                total_bytes += size_bytes
            environment.charge_compute(
                sender_id, cost=0.1 * len(receiver_ids), description="ldp-encoding"
            )

        return EmbeddingInitializationResult(
            received_features=received,
            messages_sent=messages,
            bytes_sent=total_bytes,
            epsilon=self.epsilon,
        )
