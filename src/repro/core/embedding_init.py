"""LDP embedding initialisation (paper Section VI-A).

Before training starts every device must make its feature available to the
neighbouring devices whose trees contain it as a leaf — but raw features are
private.  The initialisation therefore:

1. encodes the feature with the 1-bit mechanism, using the per-element budget
   ``eps * wl(u) / d`` (Eq. 26);
2. randomly distributes the ``d`` elements into ``wl(u)`` bins and sends the
   ``k``-th bin (other elements replaced by the neutral symbol 0.5) to the
   ``k``-th requesting neighbour — under composability the total release
   still satisfies ``eps``-LDP (Theorem 4);
3. each receiver applies the unbiased recovery of Eq. 27 and stores the
   result as the initial embedding of the corresponding neighbour leaf.

The releasing device's *own* centre leaves keep the raw (non-noised) feature:
that data never leaves the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..crypto.ldp import FeatureBinPartitioner, FeatureBounds, OneBitMechanism
from ..federation.events import MessageKind
from ..federation.simulator import FederatedEnvironment
from .workload import Assignment


@dataclass
class EmbeddingInitializationResult:
    """Outcome of the feature-exchange phase."""

    received_features: Dict[int, Dict[int, np.ndarray]]
    messages_sent: int = 0
    bytes_sent: int = 0
    epsilon: float = 0.0
    # Flat (receiver, sender, feature-row) arrays over all exchanged messages;
    # the vectorised TreeBatch assembly consumes these instead of the nested
    # dictionaries.  Built lazily by :meth:`packed` when absent.
    packed_receivers: Optional[np.ndarray] = None
    packed_senders: Optional[np.ndarray] = None
    packed_features: Optional[np.ndarray] = None

    def feature_for(self, receiver: int, sender: int) -> np.ndarray:
        """Recovered feature of ``sender`` as seen by ``receiver``."""
        return self.received_features[receiver][sender]

    def packed(self) -> tuple:
        """``(receivers, senders, features)`` arrays over all messages."""
        if self.packed_receivers is None:
            receivers: List[int] = []
            senders: List[int] = []
            rows: List[np.ndarray] = []
            for receiver, per_sender in self.received_features.items():
                for sender, feature in per_sender.items():
                    receivers.append(int(receiver))
                    senders.append(int(sender))
                    rows.append(np.asarray(feature, dtype=np.float64))
            self.packed_receivers = np.asarray(receivers, dtype=np.int64)
            self.packed_senders = np.asarray(senders, dtype=np.int64)
            self.packed_features = (
                np.stack(rows) if rows else np.zeros((0, 0), dtype=np.float64)
            )
        return self.packed_receivers, self.packed_senders, self.packed_features


@dataclass
class SenderDraws:
    """Epsilon-independent randomness of one sender's feature release."""

    receivers: List[int]
    bin_assignment: np.ndarray
    uniforms: np.ndarray
    workload: int


@dataclass
class LDPDrawsResult:
    """All random draws of the feature exchange, shared across a sweep.

    The 1-bit mechanism separates cleanly into (a) drawing the bin partition
    and one uniform per released element — epsilon-independent — and (b)
    thresholding those uniforms against the Eq. 26 probabilities — cheap and
    epsilon-dependent.  Caching this object lets an epsilon sweep pay the
    draws (and the RNG stream consumption) once per construction.
    """

    per_sender: Dict[int, SenderDraws]

    def total_draws(self) -> int:
        """Number of uniform draws held (released elements, pre-masking)."""
        return sum(draws.uniforms.size for draws in self.per_sender.values())


class LDPEmbeddingInitializer:
    """Runs the feature exchange of Section VI-A over an environment."""

    def __init__(
        self,
        epsilon: float,
        bounds: FeatureBounds = FeatureBounds(),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = float(epsilon)
        self.bounds = bounds
        self.rng = rng if rng is not None else np.random.default_rng()
        self.mechanism = OneBitMechanism(epsilon=self.epsilon, bounds=bounds)

    @staticmethod
    def _requesters(
        environment: FederatedEnvironment, assignment: Assignment
    ) -> Dict[int, List[int]]:
        """Who requests my feature?  ``r`` requests ``s`` when ``s in N_r``."""
        requesters: Dict[int, List[int]] = {
            device_id: [] for device_id in environment.devices
        }
        for receiver, selected in assignment.selected.items():
            for sender in selected:
                requesters[int(sender)].append(int(receiver))
        return requesters

    def draw(
        self,
        environment: FederatedEnvironment,
        assignment: Assignment,
    ) -> LDPDrawsResult:
        """Consume the exchange's randomness without touching epsilon.

        Draws the per-sender bin partitions and the uniforms the encoder
        thresholds, in exactly the stream order of the eager exchange, so
        ``threshold`` (for any epsilon) reproduces the one-shot ``run``
        bit-for-bit.
        """
        per_sender: Dict[int, SenderDraws] = {}
        for sender_id, receiver_ids in self._requesters(environment, assignment).items():
            feature = environment.devices[sender_id].ego.feature
            dimension = feature.shape[0]
            # The sender's workload controls the privacy split; devices whose
            # selection ended up empty (possible after trimming) fall back to
            # a single bin so their feature can still be released once.
            workload = max(assignment.workload(sender_id), 1)
            partitioner = FeatureBinPartitioner(dimension, workload, rng=self.rng)
            receivers_sorted = sorted(receiver_ids)
            uniforms = (
                self.rng.random((len(receivers_sorted), dimension))
                if receivers_sorted
                else np.zeros((0, dimension), dtype=np.float64)
            )
            per_sender[sender_id] = SenderDraws(
                receivers=receivers_sorted,
                bin_assignment=partitioner.assignment,
                uniforms=uniforms,
                workload=workload,
            )
        return LDPDrawsResult(per_sender=per_sender)

    def threshold(
        self,
        environment: FederatedEnvironment,
        draws: LDPDrawsResult,
    ) -> EmbeddingInitializationResult:
        """Threshold pre-drawn randomness into the released features.

        Consumes no randomness; charges the exchange's communication and
        compute exactly like the eager ``run``.
        """
        received: Dict[int, Dict[int, np.ndarray]] = {
            device_id: {} for device_id in environment.devices
        }
        messages = 0
        total_bytes = 0

        packed_receivers: List[np.ndarray] = []
        packed_senders: List[np.ndarray] = []
        packed_features: List[np.ndarray] = []

        for sender_id, sender_draws in draws.per_sender.items():
            feature = environment.devices[sender_id].ego.feature
            dimension = feature.shape[0]
            workload = sender_draws.workload
            receivers_sorted = sender_draws.receivers
            if receivers_sorted:
                # One encode over all receivers at once.  The batched call
                # thresholds the same uniforms in the same (row-major) order
                # as one encode per receiver, so the released symbols are
                # bit-for-bit identical to the sequential exchange.
                ranks = np.arange(len(receivers_sorted)) % workload
                masks = sender_draws.bin_assignment[None, :] == ranks[:, None]
                encoded = self.mechanism.encode(
                    np.broadcast_to(feature, (len(receivers_sorted), dimension)),
                    workload=workload, dimension=dimension,
                    selected=masks, uniforms=sender_draws.uniforms,
                )
                recovered = self.mechanism.recover(
                    encoded, workload=workload, dimension=dimension
                )
                # Encoded symbols need 2 bits each ({0, 0.5, 1}); account the
                # transmission of the full d-dimensional message.
                size_bytes = max(1, (2 * dimension) // 8)
                for row, receiver_id in enumerate(receivers_sorted):
                    received[receiver_id][sender_id] = recovered[row]
                    environment.devices[receiver_id].store_received_feature(
                        sender_id, recovered[row]
                    )
                    environment.exchange(
                        sender_id, receiver_id, MessageKind.FEATURE_EXCHANGE, size_bytes,
                        description="ldp-feature",
                    )
                messages += len(receivers_sorted)
                total_bytes += size_bytes * len(receivers_sorted)
                packed_receivers.append(np.asarray(receivers_sorted, dtype=np.int64))
                packed_senders.append(
                    np.full(len(receivers_sorted), sender_id, dtype=np.int64)
                )
                packed_features.append(recovered)
            environment.charge_compute(
                sender_id, cost=0.1 * len(receivers_sorted), description="ldp-encoding"
            )

        return EmbeddingInitializationResult(
            received_features=received,
            messages_sent=messages,
            bytes_sent=total_bytes,
            epsilon=self.epsilon,
            packed_receivers=(
                np.concatenate(packed_receivers)
                if packed_receivers
                else np.zeros(0, dtype=np.int64)
            ),
            packed_senders=(
                np.concatenate(packed_senders)
                if packed_senders
                else np.zeros(0, dtype=np.int64)
            ),
            packed_features=(
                np.concatenate(packed_features)
                if packed_features
                else np.zeros((0, 0), dtype=np.float64)
            ),
        )

    def run(
        self,
        environment: FederatedEnvironment,
        assignment: Assignment,
    ) -> EmbeddingInitializationResult:
        """Execute the exchange and return every receiver's recovered features.

        ``assignment`` determines both the sender's workload ``wl(u)`` (its
        per-element budget and bin count) and who needs whose feature: device
        ``r`` needs the feature of ``s`` exactly when ``s`` is a selected
        neighbour of ``r`` (``s`` appears as a leaf in ``T(r)``).  Equivalent
        to :meth:`draw` followed by :meth:`threshold`.
        """
        return self.threshold(environment, self.draw(environment, assignment))
