"""Quickstart: run the full Lumos pipeline end to end on a small social graph.

This script covers the public API in ~40 lines:

1. load (or generate) a node-level federated graph,
2. configure Lumos (tree constructor + tree-based GNN trainer),
3. train a supervised node classifier with feature and degree protection,
4. inspect both the accuracy and the system-side metrics,
5. trace a parallel sweep and export a Perfetto-loadable Chrome trace.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import obs
from repro.core import LumosSystem, default_config_for
from repro.eval.runner import (
    ExperimentScale,
    run_churn_maintenance,
    run_epsilon_sweep,
    run_robustness_sweep,
)
from repro.faults import FaultScenarioConfig
from repro.graph import load_dataset, split_nodes


def main() -> None:
    # A synthetic stand-in for the Facebook Page-Page graph (see DESIGN.md §2);
    # pass num_nodes=None to use the full-size synthetic graph.
    graph = load_dataset("facebook", seed=0, num_nodes=300)
    print(f"Loaded {graph.name}: {graph.num_nodes} devices, {graph.num_edges} edges, "
          f"{graph.num_features} features, {graph.num_classes} classes")

    # Paper defaults (GCN backbone, eps=2, 2 layers, hidden 16); scaled-down
    # MCMC iterations and epochs so the quickstart finishes in seconds.
    config = (
        default_config_for("facebook")
        .with_backbone("gcn")
        .with_mcmc_iterations(150)
        .with_epochs(80)
    )

    system = LumosSystem(graph, config)
    split = split_nodes(graph, train_fraction=0.5, val_fraction=0.25, seed=0)
    result = system.run_supervised(split, log_every=20)

    print("\n=== Lumos results ===")
    print(f"test accuracy:                    {result.test_accuracy:.4f}")
    print(f"best validation accuracy:         {result.best_val_accuracy:.4f}")
    print(f"max workload after trimming:      {result.construction.max_workload()} "
          f"(max degree without trimming: {int(graph.degrees().max())})")
    print(f"avg communication rounds/device:  {result.communication_rounds_per_device:.2f} per epoch")
    print(f"simulated epoch completion time:  {result.simulated_epoch_time:.2f} s")
    print(f"secure comparisons executed:      {int(result.construction.transcript.comparisons)}")

    # The expensive pipeline stages went through the staged execution engine;
    # a second system over the same graph (here: the GAT backbone) replays
    # partition, tree construction, LDP init and batch assembly from the
    # content-keyed artifact store and only retrains.
    gat_system = LumosSystem(graph, config.with_backbone("gat"))
    gat_result = gat_system.run_supervised(split)
    print("\n=== Engine reuse (GAT backbone rides on cached stages) ===")
    print(f"GAT test accuracy:                {gat_result.test_accuracy:.4f}")
    for stage, stats in gat_system.engine_stats().items():
        print(f"stage {stage:<14} hits={stats['hits']} misses={stats['misses']}")

    # Independent experiment arms can also be scheduled across worker
    # processes (repro.runtime): the shared pipeline prefix is computed once,
    # per-point work fans out, and the merged results are bit-for-bit
    # identical to the serial loop — same numbers, sooner on multi-core.
    sweep = run_epsilon_sweep(
        "facebook",
        epsilons=[0.5, 1.0, 2.0, 4.0],
        scale=ExperimentScale(num_nodes=300, epochs=20, mcmc_iterations=150),
        executor="process",   # the default, executor="serial", runs inline
        max_workers=2,
    )
    print("\n=== Parallel epsilon sweep (executor=\"process\") ===")
    for epsilon, accuracy in sweep.items():
        print(f"epsilon={epsilon:<4} test accuracy: {accuracy:.4f}")

    # Federations are rarely fully reliable.  A FaultScenarioConfig compiles
    # into a seeded per-round availability/latency schedule (repro.faults);
    # training degrades gracefully — offline devices charge nothing, evicted
    # or lost updates are charged but dropped, and surviving updates are
    # reweighted — and every scenario reports its accuracy delta against the
    # fault-free baseline.  An empty scenario is bit-identical to the
    # fault-free path (it even shares the same cache keys).
    robustness = run_robustness_sweep(
        "facebook",
        scenarios={
            "baseline": FaultScenarioConfig(),
            "dropout_20": FaultScenarioConfig(dropout_rate=0.20, fault_seed=11),
            "stragglers": FaultScenarioConfig(
                straggler_rate=0.20, straggler_multiplier=4.0,
                round_deadline=2.5, fault_seed=14,
            ),
        },
        scale=ExperimentScale(num_nodes=300, epochs=20, mcmc_iterations=150),
    )
    print("\n=== Robustness under unreliable federations ===")
    for name, metrics in robustness.items():
        print(f"{name:<12} accuracy={metrics['test_accuracy']:.4f} "
              f"({metrics['accuracy_vs_baseline_percent']:+.1f}% vs baseline), "
              f"participation={metrics['mean_participation']:.2f}, "
              f"epoch time={metrics['mean_epoch_time']:.2f} s")

    # When devices join and leave between rounds, the constructed tree is
    # maintained in place instead of rebuilt: every delta mutation is
    # journalled (write-ahead, fsync'd, checksummed) before it applies, a
    # staleness monitor compares the live tree against a shadow fresh
    # construction and escalates rebalance -> rebuild when drift exceeds its
    # bounds, and the payload's replay_matches_live field asserts that
    # replaying the journal reproduces the live tree bit-for-bit.
    churn = run_churn_maintenance(
        "facebook",
        scenario=FaultScenarioConfig(join_rate=0.30, leave_rate=0.10, fault_seed=13),
        rounds=12,
        scale=ExperimentScale(num_nodes=300, epochs=20, mcmc_iterations=150),
        check_every=4,
    )
    print("\n=== Self-healing tree maintenance under churn ===")
    print(f"mutations journalled:   {int(churn['mutations'])} "
          f"({int(churn['joins'])} joins, {int(churn['leaves'])} leaves, "
          f"{int(churn['rebalances'])} rebalances, {int(churn['rebuilds'])} rebuilds)")
    print(f"max staleness observed: {churn['max_staleness']:.3f} "
          f"over {int(churn['staleness_checks'])} checks")
    print(f"journal replay == live: {bool(churn['replay_matches_live'])}")

    # Secure comparisons can also run as *two real OS processes* over a
    # CRC-checked framed channel (repro.crypto.transport): the driver keeps
    # results, accountant, ledger transcript and RNG stream bit-for-bit
    # identical to the in-process simulation above, while the bytes on the
    # wire are measured and reconciled exactly against the analytic
    # comparison_cost() model (the session raises MeasuredCostMismatch on
    # any divergence).  Benchmark it with: repro-bench --only secure_transport
    from repro.crypto import RemoteParty

    driver = RemoteParty(bit_width=16)
    driver.precompute_pads(64)  # OT-extension-style bulk pad draw
    outcome = driver.compare_batch([7, 200, 41], [9, 100, 41])
    print("\n=== Two-party secure comparison over real transport ===")
    print(f"left >= right:          {[bool(bit) for bit in outcome.left_ge_right]}")
    print(f"measured wire payload:  {outcome.report.protocol_payload_bytes} B "
          f"(analytic model: {outcome.report.analytic_payload_bytes} B)")
    print(f"frames on the wire:     {outcome.report.frames} "
          f"({outcome.report.wire_bytes} B incl. headers + session control)")

    # Every layer is instrumented with zero-dependency spans and counters
    # (repro.obs).  Tracing is invisible to the computation — results,
    # ledger, accountant and RNG state are bit-for-bit identical with the
    # tracer on or off — and worker processes ship their spans home inside
    # the result payloads, so one merged trace covers the whole pool.
    with obs.tracing() as tracer:
        run_epsilon_sweep(
            "facebook",
            epsilons=[0.5, 2.0, 4.0],
            scale=ExperimentScale(num_nodes=300, epochs=10, mcmc_iterations=150),
            executor="process",
            max_workers=2,
        )
    trace = obs.RunTrace.from_tracer(tracer)
    path = obs.write_chrome_trace(trace, "lumos_trace.json")
    print("\n=== Observability: traced sweep ===")
    print(obs.summary_table(trace))
    print(f"Chrome trace written to {path} — open https://ui.perfetto.dev and "
          "load it to see one track per worker")


if __name__ == "__main__":
    main()
