"""Supervised scenario: page-category classification on a social graph.

Reproduces the Fig. 3 comparison on one dataset: Lumos vs the centralized
upper bound, the LPGNN baseline and the naive federated baseline, for both
GNN backbones.  This is the workload the paper's introduction motivates —
classifying decentralized social-network accounts without ever centralising
their features, neighbour lists or degrees.

Run with::

    python examples/social_network_classification.py [--nodes 300] [--epochs 60]
"""

from __future__ import annotations

import argparse

from repro.baselines import (
    train_centralized_supervised,
    train_lpgnn_supervised,
    train_naive_fedgnn_supervised,
)
from repro.core import LumosSystem, default_config_for
from repro.eval.reporting import format_table, summarize_comparison
from repro.graph import load_dataset, split_nodes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="facebook", choices=["facebook", "lastfm"])
    parser.add_argument("--nodes", type=int, default=300)
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--mcmc", type=int, default=120)
    parser.add_argument("--backbones", nargs="+", default=["gcn", "gat"])
    args = parser.parse_args()

    graph = load_dataset(args.dataset, seed=0, num_nodes=args.nodes)
    split = split_nodes(graph, seed=0)
    print(f"{graph.name}: {graph.num_nodes} devices, {graph.num_edges} edges, "
          f"{graph.num_classes} classes")

    rows = []
    for backbone in args.backbones:
        config = (
            default_config_for(args.dataset)
            .with_backbone(backbone)
            .with_mcmc_iterations(args.mcmc)
            .with_epochs(args.epochs)
        )
        lumos = LumosSystem(graph, config).run_supervised(split).test_accuracy
        centralized = train_centralized_supervised(
            graph, split, backbone=backbone, epochs=args.epochs
        ).test_accuracy
        lpgnn = train_lpgnn_supervised(
            graph, split, backbone=backbone, epochs=args.epochs
        ).test_accuracy
        naive = train_naive_fedgnn_supervised(
            graph, split, backbone=backbone, epochs=args.epochs
        ).test_accuracy
        rows.append([backbone.upper(), lumos, centralized, lpgnn, naive])
        print(f"\n[{backbone.upper()}] " + summarize_comparison(
            {"lumos": lumos, "centralized": centralized, "lpgnn": lpgnn, "naive_fedgnn": naive},
            reference_key="lumos",
        ))

    print("\n=== Label classification accuracy (cf. paper Fig. 3) ===")
    print(format_table(["backbone", "Lumos", "Centralized", "LPGNN", "Naive FedGNN"], rows))


if __name__ == "__main__":
    main()
