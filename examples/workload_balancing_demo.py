"""System-side scenario: degree heterogeneity and the tree constructor.

This example walks through the heterogeneity-aware tree constructor on its
own (no GNN training): the greedy initialisation (Alg. 1), the MCMC balancing
iterations (Alg. 2/3) and the secure-comparison transcript, then prints the
workload CDF with and without trimming (cf. paper Fig. 7) and the projected
per-epoch system cost (cf. Fig. 8).

Run with::

    python examples/workload_balancing_demo.py [--nodes 400] [--mcmc 200]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import (
    Assignment,
    EpochCostModel,
    LDPEmbeddingInitializer,
    MCMCBalancer,
    TrainerConfig,
    TreeBasedGNNTrainer,
    TreeConstructor,
    TreeConstructorConfig,
    greedy_initialization,
    workload_cdf,
)
from repro.eval.reporting import format_table, relative_savings_percent
from repro.federation import FederatedEnvironment
from repro.graph import load_dataset


def describe(workloads: np.ndarray) -> list:
    return [
        float(workloads.mean()),
        float(np.percentile(workloads, 95)),
        float(workloads.max()),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="facebook", choices=["facebook", "lastfm"])
    parser.add_argument("--nodes", type=int, default=400)
    parser.add_argument("--mcmc", type=int, default=200)
    args = parser.parse_args()

    graph = load_dataset(args.dataset, seed=0, num_nodes=args.nodes)
    print(f"{graph.name}: {graph.num_nodes} devices, {graph.num_edges} edges, "
          f"max degree {int(graph.degrees().max())}")

    # --- Stage 0: no trimming (every device keeps its whole ego network) -----
    untrimmed = Assignment.full(graph)

    # --- Stage 1: greedy initialisation (Alg. 1) ------------------------------
    environment = FederatedEnvironment.from_graph(graph, seed=0)
    greedy = greedy_initialization(environment, rng=np.random.default_rng(0))

    # --- Stage 2: MCMC balancing (Alg. 2 + Alg. 3) ----------------------------
    balancer = MCMCBalancer(environment, iterations=args.mcmc, rng=np.random.default_rng(1))
    mcmc = balancer.run(greedy)
    print(f"\nMCMC: {args.mcmc} iterations, acceptance rate "
          f"{mcmc.acceptance_rate:.2f}, objective {mcmc.initial_objective} -> "
          f"{mcmc.final_objective}")

    print("\n=== Workload distribution (cf. paper Fig. 7) ===")
    rows = [
        ["no trimming"] + describe(untrimmed.workload_array()),
        ["greedy (Alg. 1)"] + describe(greedy.workload_array()),
        ["greedy + MCMC (Alg. 2)"] + describe(mcmc.assignment.workload_array()),
    ]
    print(format_table(["stage", "mean", "p95", "max"], rows, float_format="{:.1f}"))

    values, probabilities = workload_cdf(mcmc.assignment.workload_array())
    deciles = np.linspace(0.1, 1.0, 10)
    cdf_points = [values[np.searchsorted(probabilities, d, side="left")] for d in deciles]
    print("\nTrimmed-workload CDF deciles: "
          + ", ".join(f"P{int(d * 100)}<= {int(v)}" for d, v in zip(deciles, cdf_points)))

    # --- Projected per-epoch system cost (cf. paper Fig. 8) -------------------
    constructor = TreeConstructor(TreeConstructorConfig(mcmc_iterations=0),
                                  rng=np.random.default_rng(2))
    print("\n=== Projected per-epoch system cost (cf. paper Fig. 8) ===")
    cost_rows = []
    profiles = {}
    for label, use_trimming in (("Lumos", True), ("Lumos w.o. TT", False)):
        env = FederatedEnvironment.from_graph(graph, seed=0)
        cfg = TreeConstructorConfig(mcmc_iterations=args.mcmc if use_trimming else 0,
                                    use_tree_trimming=use_trimming)
        construction = TreeConstructor(cfg, rng=np.random.default_rng(3)).construct(env)
        initializer = LDPEmbeddingInitializer(epsilon=2.0, rng=np.random.default_rng(4))
        initialization = initializer.run(env, construction.assignment)
        trainer = TreeBasedGNNTrainer(env, construction, initialization,
                                      TrainerConfig(epochs=1), cost_model=EpochCostModel())
        rounds = trainer.communication_profile("supervised")["per_device_rounds"].mean()
        epoch_time = trainer.simulated_epoch_time("supervised")
        profiles[label] = (rounds, epoch_time)
        cost_rows.append([label, rounds, epoch_time])
    print(format_table(["system", "avg rounds/device/epoch", "epoch time (simulated s)"],
                       cost_rows, float_format="{:.2f}"))
    rounds_saved = relative_savings_percent(profiles["Lumos w.o. TT"][0], profiles["Lumos"][0])
    time_saved = relative_savings_percent(profiles["Lumos w.o. TT"][1], profiles["Lumos"][1])
    print(f"\nTrimming saves {rounds_saved:.1f}% communication rounds and "
          f"{time_saved:.1f}% simulated epoch time "
          f"(paper: 34-43% rounds, 10-36% time).")

    transcript = balancer.accountant
    print(f"\nSecure-comparison transcript: {transcript.comparisons} comparisons, "
          f"{transcript.ot_invocations} OT invocations, {transcript.bits} bits exchanged "
          f"(degrees/workloads never leave their devices in the clear).")


if __name__ == "__main__":
    main()
