"""Unsupervised scenario: link prediction on a LastFM-like social graph.

Reproduces the Fig. 4 comparison on one dataset: Lumos trains without any
labels by predicting which vertex pairs are connected (Eq. 33), and is
compared against the centralized GNN and the naive federated baseline using
the ROC-AUC score on held-out edges.

Run with::

    python examples/link_prediction_unsupervised.py [--nodes 300] [--epochs 60]
"""

from __future__ import annotations

import argparse

from repro.baselines import train_centralized_unsupervised, train_naive_fedgnn_unsupervised
from repro.core import LumosSystem, default_config_for
from repro.eval.reporting import format_table
from repro.graph import load_dataset, split_edges


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="lastfm", choices=["facebook", "lastfm"])
    parser.add_argument("--nodes", type=int, default=300)
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--mcmc", type=int, default=120)
    parser.add_argument("--backbone", default="gcn", choices=["gcn", "gat"])
    args = parser.parse_args()

    graph = load_dataset(args.dataset, seed=0, num_nodes=args.nodes)
    edge_split = split_edges(graph, train_fraction=0.8, val_fraction=0.05, seed=0)
    print(f"{graph.name}: {graph.num_nodes} devices, {graph.num_edges} edges "
          f"({len(edge_split.train_edges)} train / {len(edge_split.val_edges)} val / "
          f"{len(edge_split.test_edges)} test)")

    config = (
        default_config_for(args.dataset)
        .with_backbone(args.backbone)
        .with_mcmc_iterations(args.mcmc)
        .with_epochs(args.epochs)
    )
    lumos_result = LumosSystem(graph, config).run_unsupervised(edge_split, log_every=20)
    centralized = train_centralized_unsupervised(
        graph, edge_split, backbone=args.backbone, epochs=args.epochs
    )
    naive = train_naive_fedgnn_unsupervised(
        graph, edge_split, backbone=args.backbone, epochs=args.epochs
    )

    print("\n=== Link prediction ROC-AUC (cf. paper Fig. 4) ===")
    print(
        format_table(
            ["method", "test AUC"],
            [
                ["Lumos", lumos_result.test_auc],
                ["Centralized GNN", centralized.test_auc],
                ["Naive FedGNN", naive.test_auc],
            ],
        )
    )
    print(f"\nLumos avg communication rounds per device per epoch: "
          f"{lumos_result.communication_rounds_per_device:.2f}")


if __name__ == "__main__":
    main()
